"""Batch/scalar equivalence for the columnar (numpy) matcher path.

The columnar path is an *execution strategy*, not a semantic change:
:meth:`StreamMatcher.offer_batch` and Loom's columnar ``ingest_batch``
must be bit-identical to per-edge :meth:`StreamMatcher.offer` /
``ingest`` — same window contents, same matchList, same placements, same
core counters (only the three batch counters may differ, and only by
batch layout).  These suites pin that equivalence over randomized
workloads × window sizes × thresholds, the batch-boundary edge cases
(empty and single-edge batches, batches straddling evictions), the
``LabelConflictError`` abort accounting, the window's columnar mirrors,
and the :class:`~repro.core.columnar.PlanTables` probe agreement with the
plan's dicts — including misses.
"""

import math

import numpy as np
import pytest

from helpers import make_random_labelled_graph
from repro.core.columnar import (
    GrowableIntColumn,
    PlanTables,
    WindowColumns,
    classify_roots,
)
from repro.core.loom import LoomPartitioner
from repro.core.matching import StreamMatcher
from repro.core.motifs import MotifIndex
from repro.core.plan import NO_STATE
from repro.core.tpstry import TPSTry
from repro.core.window import LabelConflictError
from repro.graph.stream import EdgeEvent, batched, stream_edges, synthetic_stream
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload


def build_matcher(workload, window=100, threshold=0.4, **kwargs) -> StreamMatcher:
    trie = TPSTry.from_workload(workload)
    return StreamMatcher(MotifIndex(trie, threshold), window, **kwargs)


def evict_once(matcher: StreamMatcher) -> None:
    """The driver-side eviction a Loom run would perform: allocate the
    best match's cluster (here: just remove it) and slide the window."""
    eviction = matcher.next_eviction()
    if eviction.matches:
        matcher.remove_cluster(set(eviction.matches[0].edges))
    else:
        matcher.remove_cluster({eviction.ekey})


def drive_scalar(matcher: StreamMatcher, events) -> int:
    entered = 0
    for event in events:
        try:
            if matcher.offer(event):
                entered += 1
        except LabelConflictError:
            raise
        while matcher.needs_eviction():
            evict_once(matcher)
    return entered


def drive_batched(matcher: StreamMatcher, events, batch_size: int) -> int:
    entered = 0
    for batch in batched(events, batch_size):
        entered += matcher.offer_batch(batch, on_overflow=lambda: evict_once(matcher))
    return entered


def matcher_snapshot(matcher: StreamMatcher):
    """Everything observable: window FIFO order, window labels, matchList
    contents, and the core counters."""
    return (
        tuple(matcher.window.edges()),
        dict(matcher.window._labels),
        {(m.edges, m.state) for m in matcher.matchlist.all_matches()},
        matcher.stats.core_counters(),
    )


@pytest.fixture(scope="module")
def mixed_workload() -> Workload:
    """Paths over {a, b, c} with skewed frequencies, so the 40% threshold
    splits labels into windowed and bypassed classes."""
    return Workload(
        [
            (path_pattern(["a", "b"], name="ab"), 6.0),
            (path_pattern(["a", "b", "c"], name="abc"), 3.0),
            (path_pattern(["b", "a", "b"], name="bab"), 2.0),
            (path_pattern(["c", "d"], name="cd"), 1.0),  # below threshold
        ],
        name="mixed",
    )


def random_events(num_vertices, num_edges, seed, labels=("a", "b", "c", "d")):
    graph = make_random_labelled_graph(num_vertices, num_edges, labels=labels, seed=seed)
    return list(stream_edges(graph, "bfs", seed=seed))


class TestOfferBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("window", [5, 23, 400])
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_randomized_streams_bit_identical(
        self, mixed_workload, seed, window, batch_size
    ):
        events = random_events(50, 160, seed)
        a = build_matcher(mixed_workload, window)
        b = build_matcher(mixed_workload, window)
        entered_a = drive_scalar(a, events)
        entered_b = drive_batched(b, events, batch_size)
        assert entered_a == entered_b
        assert matcher_snapshot(a) == matcher_snapshot(b)

    @pytest.mark.parametrize("threshold", [0.2, 0.4, 0.7])
    def test_thresholds_change_gate_not_equivalence(self, mixed_workload, threshold):
        events = random_events(40, 120, seed=3)
        a = build_matcher(mixed_workload, 30, threshold=threshold)
        b = build_matcher(mixed_workload, 30, threshold=threshold)
        drive_scalar(a, events)
        drive_batched(b, events, 16)
        assert matcher_snapshot(a) == matcher_snapshot(b)
        # And the batch counters add up: every offered edge was classified.
        stats = b.stats
        assert stats.vector_bypassed + stats.scalar_fallbacks == stats.edges_offered
        assert stats.vector_bypassed == stats.edges_bypassed
        assert stats.scalar_fallbacks == stats.root_hits

    def test_empty_batch_counts_and_returns_zero(self, mixed_workload):
        m = build_matcher(mixed_workload)
        assert m.offer_batch([]) == 0
        assert m.stats.batches_offered == 1
        assert m.stats.edges_offered == 0

    def test_single_edge_batches_match_offer(self, mixed_workload):
        a = build_matcher(mixed_workload, 10)
        b = build_matcher(mixed_workload, 10)
        events = random_events(20, 40, seed=5)
        drive_scalar(a, events)
        drive_batched(b, events, 1)
        assert matcher_snapshot(a) == matcher_snapshot(b)
        assert b.stats.batches_offered == len(events)

    def test_batch_straddles_eviction(self, mixed_workload):
        """One batch overflows the window several times over; on_overflow
        must fire mid-batch so later edges of the batch see the slid
        window, exactly as the scalar loop would."""
        events = random_events(30, 90, seed=7)
        a = build_matcher(mixed_workload, 4)
        b = build_matcher(mixed_workload, 4)
        drive_scalar(a, events)
        b.offer_batch(events, on_overflow=lambda: evict_once(b))
        assert matcher_snapshot(a) == matcher_snapshot(b)
        assert len(b.window._events) <= 4

    def test_without_overflow_callback_window_overflows(self, mixed_workload):
        """No callback = standalone-matcher behaviour: repeated offers
        leave the window overflowing for the caller to drain."""
        events = [EdgeEvent(i, "a", i + 1, "b") for i in range(0, 20, 2)]
        m = build_matcher(mixed_workload, 3)
        m.offer_batch(events)
        assert m.needs_eviction()
        assert len(m.window._events) == 10

    def test_label_conflict_aborts_with_scalar_counters(self, mixed_workload):
        """A mid-batch relabel aborts the batch; the pre-added gate
        counters for the unreached tail are rolled back so the stats match
        a scalar run stopped at the same edge."""
        events = [
            EdgeEvent(1, "a", 2, "b"),
            EdgeEvent(8, "c", 9, "d"),  # bypassed, after the conflict
            EdgeEvent(1, "b", 2, "a"),  # relabels vertices 1 and 2
            EdgeEvent(3, "a", 4, "b"),  # never reached
            EdgeEvent(5, "c", 6, "d"),  # never reached (would bypass)
        ]
        a = build_matcher(mixed_workload, 10)
        with pytest.raises(LabelConflictError):
            for event in events:
                a.offer(event)
        b = build_matcher(mixed_workload, 10)
        with pytest.raises(LabelConflictError):
            b.offer_batch(events)
        assert a.stats.core_counters() == b.stats.core_counters()
        assert b.stats.label_conflicts == 1
        assert matcher_snapshot(a) == matcher_snapshot(b)

    def test_duplicate_edges_do_not_double_enter(self, mixed_workload):
        m = build_matcher(mixed_workload, 10)
        e = EdgeEvent(1, "a", 2, "b")
        assert m.offer_batch([e, e]) == 1
        assert m.stats.edges_windowed == 1
        assert m.stats.scalar_fallbacks == 2  # both hit the gate


class TestLoomColumnarEquivalence:
    @pytest.fixture
    def workload(self, fig5_workload):
        return fig5_workload

    def run_loom(self, events, workload, num_vertices, **kwargs):
        state = PartitionState.for_graph(4, num_vertices)
        loom = LoomPartitioner(state, workload, window_size=40, seed=0, **kwargs)
        loom.ingest_all(events)
        return state, loom

    @pytest.mark.parametrize("batch_size", [1, 13, 2048])
    def test_columnar_matches_scalar_ingest(self, workload, batch_size):
        graph = make_random_labelled_graph(60, 140, seed=5)
        events = list(stream_edges(graph, "bfs", seed=3))
        state_a, loom_a = self.run_loom(events, workload, 60, columnar=False)
        state_b, loom_b = self.run_loom(
            events, workload, 60, columnar=True, batch_size=batch_size
        )
        assert state_a.assignment() == state_b.assignment()
        assert (
            loom_a.matcher.stats.core_counters()
            == loom_b.matcher.stats.core_counters()
        )
        assert loom_a.stats == loom_b.stats
        assert loom_a.edges_ingested == loom_b.edges_ingested == len(events)
        # The columnar run actually used the batch gate.
        assert loom_b.matcher.stats.batches_offered > 0
        assert loom_a.matcher.stats.batches_offered == 0

    def test_columnar_matches_per_event_ingest(self, workload):
        graph = make_random_labelled_graph(50, 120, seed=11)
        events = list(stream_edges(graph, "bfs", seed=2))
        state_a = PartitionState.for_graph(4, 50)
        loom_a = LoomPartitioner(state_a, workload, window_size=25, seed=0)
        for event in events:
            loom_a.ingest(event)
        loom_a.finalize()
        state_b = PartitionState.for_graph(4, 50)
        loom_b = LoomPartitioner(
            state_b, workload, window_size=25, seed=0, batch_size=17
        )
        loom_b.ingest_all(events)
        loom_b.finalize()
        assert state_a.assignment() == state_b.assignment()
        assert (
            loom_a.matcher.stats.core_counters()
            == loom_b.matcher.stats.core_counters()
        )

    def test_scalar_path_reproduces_golden_digest(self, fig5_workload):
        """The golden digests in test_plan.py run with columnar on (the
        default); the scalar escape hatch must reproduce them too."""
        import hashlib
        import json

        from test_plan import GOLDEN_DIGESTS

        events = list(synthetic_stream(500, 3000, seed=9))
        state = PartitionState.for_graph(4, 500)
        LoomPartitioner(
            state, fig5_workload, window_size=300, seed=0, columnar=False
        ).ingest_all(events)
        blob = json.dumps(
            sorted((repr(v), p) for v, p in state.assignment().items())
        ).encode()
        digest = hashlib.sha256(blob).hexdigest()
        assert digest == GOLDEN_DIGESTS["synthetic-500v-3000e"]

    def test_batch_size_validation(self, workload):
        state = PartitionState.for_graph(4, 10)
        with pytest.raises(ValueError):
            LoomPartitioner(state, workload, batch_size=0)


class TestWindowColumns:
    def test_mirrors_agree_with_dicts_under_churn(self, mixed_workload):
        """Randomized add/evict interleaving: the degrees column must equal
        the adjacency's degree at every vertex id, and the arrival log must
        equal edges_windowed, at every step."""
        events = random_events(30, 90, seed=9)
        m = build_matcher(mixed_workload, 6)
        for event in events:
            try:
                m.offer(event)
            except LabelConflictError:
                continue
            while m.needs_eviction():
                evict_once(m)
            cols = m.window.cols
            assert len(cols.ekeys) == m.stats.edges_windowed
            # Materialise (a frombuffer view would pin the buffer against
            # the next offer's growth — views are strictly per-batch).
            degrees = cols.degree_view().tolist()
            adj = m.window._adj
            for vid in range(len(degrees)):
                assert degrees[vid] == len(adj.get(vid, ()))
            # Ids past the column's length have never been windowed.
            for vid in adj:
                assert vid < len(degrees)

    def test_arrival_log_is_append_only(self):
        cols = WindowColumns()
        cols.record_add(0, 1, 100)
        cols.record_add(1, 2, 200)
        cols.record_remove(0, 1)
        ekeys, us, vs = cols.arrival_view()
        assert ekeys.tolist() == [100, 200]  # evictions never retract rows
        assert us.tolist() == [0, 1]
        assert vs.tolist() == [1, 2]
        assert cols.degree_view().tolist() == [0, 1, 1]


class TestGrowableIntColumn:
    def test_scalar_and_view_roundtrip(self):
        col = GrowableIntColumn([3, 1])
        col.append(7)
        col.extend([5, 9])
        col[0] = 4
        assert col.tolist() == [4, 1, 7, 5, 9]
        view = col.view()
        assert view.dtype == np.int64
        assert view.tolist() == [4, 1, 7, 5, 9]
        # Zero-copy: a scalar write shows through the live view.
        col[1] = 42
        assert view[1] == 42

    def test_grow_to_pads_with_fill(self):
        col = GrowableIntColumn()
        assert col.view().size == 0
        col.grow_to(3)
        assert col.tolist() == [0, 0, 0]
        col.grow_to(2)  # never shrinks
        assert len(col) == 3


class TestClassifyRoots:
    def test_splits_by_sign(self):
        windowed, bypassed = classify_roots([2, -1, 0, NO_STATE, 5])
        assert windowed == [0, 2, 4]
        assert bypassed == 2

    def test_empty(self):
        assert classify_roots([]) == ([], 0)


class TestPlanTables:
    @pytest.fixture
    def plan(self, fig5_workload):
        return MotifIndex(TPSTry.from_workload(fig5_workload), 0.4).compile()

    def test_root_probe_agrees_with_dict_including_misses(self, plan):
        tables = PlanTables.from_plan(plan)
        keys = sorted(plan._roots_by_sig)
        probe_keys = keys + [-1, 0, max(keys) + 1, max(keys) + 12345]
        got = tables.probe_roots(np.array(probe_keys, dtype=np.int64))
        want = [plan._roots_by_sig.get(k, NO_STATE) for k in probe_keys]
        assert got.tolist() == want

    def test_successor_probe_agrees_with_dict_including_misses(self, plan):
        tables = PlanTables.from_plan(plan)
        keys = sorted(plan._successors)
        probe_keys = keys + [-7, max(keys) + 1]
        row_ids = tables.probe_successor_rows(np.array(probe_keys, dtype=np.int64))
        rows = tables.successors_for_rows(row_ids)
        for key, row in zip(probe_keys, rows):
            assert row == plan._successors.get(key)

    def test_successor_rows_mirror_plan_dense_rows(self, plan):
        """plan.successor_rows (the dense list the scalar path indexes)
        and the dict must agree key for key."""
        for key, kept in plan._successors.items():
            assert plan.successor_rows[key] == kept
        hits = sum(1 for row in plan.successor_rows if row is not None)
        assert hits == len(plan._successors)

    def test_empty_tables_all_miss(self):
        class _FakePlan:
            _roots_by_sig = {}
            _successors = {}

        tables = PlanTables(_FakePlan())
        got = tables.probe_roots(np.array([1, 2, 3], dtype=np.int64))
        assert got.tolist() == [NO_STATE] * 3
        assert tables.probe_successor_rows(np.array([9], dtype=np.int64)).tolist() == [-1]


class TestDeterminism:
    def test_columnar_double_run_identical(self, fig5_workload):
        """Two identical columnar runs produce byte-identical assignments
        and stats (no hidden iteration-order or hash dependence)."""

        def run():
            events = list(synthetic_stream(200, 1200, seed=4))
            state = PartitionState(4, math.ceil(200 / 4) + 10)
            loom = LoomPartitioner(state, fig5_workload, window_size=100, seed=0)
            loom.ingest_all(events)
            loom.finalize()
            return state.assignment(), loom.matcher.stats.as_dict(), dict(loom.stats)

        assert run() == run()
