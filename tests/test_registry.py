"""The pluggable partitioner registry and its call-site integration."""

import pytest

from repro.bench.harness import make_partitioner
from repro.datasets.registry import load_dataset
from repro.graph.stream import EdgeEvent
from repro.partitioning import registry
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.state import PartitionState


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("provgen", 420, seed=2)


class RoundRobinPartitioner(StreamingPartitioner):
    """A deliberately trivial strategy used to exercise plugin paths."""

    name = "round-robin"

    def __init__(self, state):
        super().__init__(state)
        self._next = 0

    def ingest(self, event: EdgeEvent) -> None:
        for v in event.endpoints():
            vid = self.state.intern(v)
            if not self.state.is_assigned_id(vid):
                self.state.assign_id(vid, self._next % self.state.k)
                self._next += 1


@pytest.fixture
def round_robin_registered():
    registry.register("round-robin", lambda ctx: RoundRobinPartitioner(ctx.state))
    yield
    registry.unregister("round-robin")


def test_builtins_available_in_paper_order():
    names = registry.available()
    assert names[:4] == ("hash", "ldg", "fennel", "loom")
    assert registry.BUILTIN_SYSTEMS == ("hash", "ldg", "fennel", "loom")
    for name in registry.BUILTIN_SYSTEMS:
        assert registry.is_registered(name)


def test_create_unknown_raises():
    with pytest.raises(ValueError, match="unknown system"):
        registry.create("metis", PartitionState(2, 10))


def test_register_validates_name():
    with pytest.raises(ValueError):
        registry.register("", lambda ctx: None)


def test_loom_requires_workload(tiny_dataset):
    with pytest.raises(ValueError, match="workload"):
        registry.create("loom", PartitionState(2, 10), graph=tiny_dataset.graph)


def test_fennel_requires_graph():
    with pytest.raises(ValueError, match="graph"):
        registry.create("fennel", PartitionState(2, 10))


def test_registered_strategy_flows_through_make_partitioner(
    tiny_dataset, round_robin_registered
):
    g, wl = tiny_dataset.graph, tiny_dataset.workload
    state = PartitionState.for_graph(3, g.num_vertices)
    p = make_partitioner("round-robin", state, g, wl, window_size=20)
    assert isinstance(p, RoundRobinPartitioner)
    from repro.graph.stream import stream_edges

    p.ingest_all(stream_edges(g, "bfs"))
    assert state.num_assigned == g.num_vertices
    assert max(state.sizes()) - min(state.sizes()) <= 1  # round robin balances


def test_unregister_removes(round_robin_registered):
    assert registry.is_registered("round-robin")
    registry.unregister("round-robin")
    assert not registry.is_registered("round-robin")
    registry.unregister("round-robin")  # idempotent


def test_decorator_form():
    @registry.register("decorated-rr")
    def _factory(ctx):
        return RoundRobinPartitioner(ctx.state)

    try:
        p = registry.create("decorated-rr", PartitionState(2, 10))
        assert isinstance(p, RoundRobinPartitioner)
    finally:
        registry.unregister("decorated-rr")


def test_extra_kwargs_reach_loom(tiny_dataset):
    g, wl = tiny_dataset.graph, tiny_dataset.workload
    state = PartitionState.for_graph(2, g.num_vertices)
    loom = registry.create(
        "loom", state, graph=g, workload=wl, window_size=25,
        support_threshold=0.2, rationing_enabled=False,
    )
    assert loom.index.threshold == 0.2
    assert loom.allocator.rationing_enabled is False
    assert loom.matcher.window.capacity == 25
