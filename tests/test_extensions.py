"""Tests for the future-work extensions: restreaming, workload IO, CLI."""

import pytest

from repro.core.restream import (
    RestreamResult,
    migration_stats,
    migration_volume,
    restream,
    restream_until_stable,
)
from repro.datasets.figure1 import figure1_workload
from repro.datasets.registry import load_dataset
from repro.graph.io import write_graph
from repro.graph.stream import stream_edges
from repro.partitioning.state import PartitionState
from repro.query.executor import WorkloadExecutor
from repro.query.io import read_workload, write_workload
from repro.core.loom import LoomPartitioner


@pytest.fixture(scope="module")
def drift_setup():
    dataset = load_dataset("provgen", 800, seed=6)
    events = list(stream_edges(dataset.graph, "bfs", seed=6))
    state = PartitionState.for_graph(4, dataset.graph.num_vertices)
    LoomPartitioner(state, dataset.workload, window_size=120).ingest_all(events)
    return dataset, events, state


class TestMigrationVolume:
    def test_identical_states_zero(self):
        a = PartitionState(2, 10)
        a.assign(1, 0)
        b = PartitionState(2, 10)
        b.assign(1, 0)
        assert migration_volume(a, b) == 0

    def test_counts_moves_only(self):
        a = PartitionState(2, 10)
        a.assign(1, 0)
        a.assign(2, 1)
        b = PartitionState(2, 10)
        b.assign(1, 1)  # moved
        # 2 unassigned in b: not counted as a move
        assert migration_volume(a, b) == 1

    def test_migration_stats_separates_dropped(self):
        """A vertex absent from the new state is *dropped*, not kept —
        counting it as kept understated the migration fraction."""
        a = PartitionState(2, 10)
        a.assign(1, 0)  # kept
        a.assign(2, 1)  # moved
        a.assign(3, 0)  # dropped (never re-placed)
        b = PartitionState(2, 10)
        b.assign(1, 0)
        b.assign(2, 0)
        b.assign(4, 1)  # new vertex: in none of the three counters
        assert migration_stats(a, b) == (1, 1, 1)

    def test_migration_fraction_over_coassigned_only(self):
        result = RestreamResult(
            state=PartitionState(2, 10),
            moved_vertices=1,
            kept_vertices=1,
            dropped_vertices=8,
        )
        assert result.migration_fraction == 0.5


class TestRestream:
    def test_result_accounting(self, drift_setup):
        dataset, events, state = drift_setup
        result = restream(events, dataset.workload, state, window_size=120)
        assert isinstance(result, RestreamResult)
        assert (
            result.moved_vertices + result.kept_vertices + result.dropped_vertices
            == state.num_assigned
        )
        # Replaying the same stream re-places every previous vertex.
        assert result.dropped_vertices == 0
        assert 0.0 <= result.migration_fraction <= 1.0
        assert result.state.num_assigned == dataset.graph.num_vertices

    def test_dropped_vertices_on_shrunken_stream(self, drift_setup):
        """Restreaming a prefix of the original stream leaves the tail's
        vertices unplaced; they must surface as dropped, not as kept."""
        dataset, events, state = drift_setup
        result = restream(events[: len(events) // 2], dataset.workload, state, window_size=120)
        assert result.dropped_vertices > 0
        assert (
            result.moved_vertices + result.kept_vertices + result.dropped_vertices
            == state.num_assigned
        )

    def test_stickiness_caps_migration(self, drift_setup):
        """Higher stickiness must not increase migration volume."""
        dataset, events, state = drift_setup
        fractions = []
        for stickiness in (0, 4):
            result = restream(
                events, dataset.workload, state, stickiness=stickiness, window_size=120
            )
            fractions.append(result.migration_fraction)
        assert fractions[1] <= fractions[0] + 0.02

    def test_invalid_stickiness(self, drift_setup):
        dataset, events, state = drift_setup
        with pytest.raises(ValueError):
            restream(events, dataset.workload, state, stickiness=-1)

    def test_restream_under_drifted_workload(self, drift_setup):
        """After drift, restreaming should not degrade ipt under the new
        workload (and usually improves it)."""
        dataset, events, state = drift_setup
        drifted = dataset.workload.reweighted({"attribution": 10.0})
        executor = WorkloadExecutor(dataset.graph, drifted)
        stale_ipt = executor.execute(state).weighted_ipt
        result = restream(events, drifted, state, window_size=120)
        new_ipt = executor.execute(result.state).weighted_ipt
        assert new_ipt <= stale_ipt * 1.10

    def test_restream_until_stable(self, drift_setup):
        dataset, events, state = drift_setup
        executor = WorkloadExecutor(dataset.graph, dataset.workload)
        result = restream_until_stable(
            events,
            dataset.workload,
            state,
            max_passes=2,
            executor=executor,
            window_size=120,
        )
        assert result.state.num_assigned >= state.num_assigned

    def test_until_stable_validation(self, drift_setup):
        dataset, events, state = drift_setup
        with pytest.raises(ValueError, match="Executor"):
            restream_until_stable(events, dataset.workload, state)
        executor = WorkloadExecutor(dataset.graph, dataset.workload)
        with pytest.raises(ValueError, match="max_passes"):
            restream_until_stable(
                events, dataset.workload, state, max_passes=0, executor=executor
            )


class TestWorkloadIO:
    def test_round_trip(self, tmp_path):
        wl = figure1_workload()
        path = tmp_path / "q.txt"
        write_workload(wl, path)
        back = read_workload(path)
        assert len(back) == 3
        assert back.frequencies() == pytest.approx(wl.frequencies())
        for a, b in zip(wl, back):
            assert a.pattern.num_edges == b.pattern.num_edges
            assert sorted(a.pattern.labels().values()) == sorted(b.pattern.labels().values())

    def test_hand_authored(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("q coauthor 2\np 0 a 1 b\np 1 b 2 a\nq lookup 1\np 0 a 1 b\n")
        wl = read_workload(path)
        assert wl.frequencies() == pytest.approx({"coauthor": 2 / 3, "lookup": 1 / 3})

    def test_edge_before_query_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("p 0 a 1 b\n")
        with pytest.raises(ValueError, match="before any 'q'"):
            read_workload(path)

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no queries"):
            read_workload(path)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("q x 1\nwhatever\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            read_workload(path)


class TestPartitionCli:
    @pytest.fixture()
    def files(self, tmp_path):
        from repro.query.io import write_workload

        dataset = load_dataset("provgen", 400, seed=1)
        graph_path = tmp_path / "graph.txt"
        workload_path = tmp_path / "workload.txt"
        write_graph(dataset.graph, graph_path)
        write_workload(dataset.workload, workload_path)
        return dataset, graph_path, workload_path, tmp_path

    def test_loom_end_to_end(self, files, capsys):
        from repro.partition_cli import main

        dataset, graph_path, workload_path, tmp_path = files
        out = tmp_path / "assignment.tsv"
        rc = main(
            [
                str(graph_path),
                "--workload",
                str(workload_path),
                "--system",
                "loom",
                "--k",
                "4",
                "--window",
                "60",
                "--execute",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == dataset.graph.num_vertices
        partitions = {int(line.split("\t")[1]) for line in lines}
        assert partitions <= {0, 1, 2, 3}
        assert "weighted_ipt" in capsys.readouterr().err

    def test_plain_system_without_workload(self, files, capsys):
        from repro.partition_cli import main

        _dataset, graph_path, _wl, _tmp = files
        assert main([str(graph_path), "--system", "ldg", "--k", "2"]) == 0
        assert "\t" in capsys.readouterr().out

    def test_loom_requires_workload(self, files):
        from repro.partition_cli import main

        _dataset, graph_path, _wl, _tmp = files
        assert main([str(graph_path), "--system", "loom"]) == 2
