"""Tests for trie frequency updates under workload drift (Sec. 5.1.2)."""

import pytest

from repro.core.motifs import MotifIndex
from repro.core.tpstry import TPSTry
from repro.datasets.figure1 import figure1_workload
from repro.query.pattern import path_pattern
from repro.query.workload import Workload


def labels_of(node):
    return tuple(sorted(node.exemplar.labels().values()))


@pytest.fixture
def trie():
    return TPSTry.from_workload(figure1_workload())


class TestUpdateFrequency:
    def test_supports_shift_by_delta(self, trie):
        # Boost q3 (a-b-c-d) from 10% to 40%: c-d gains 0.3 support.
        before = {labels_of(n): n.support for n in trie.nodes()}
        trie.update_frequency("q3", 0.40)
        after = {labels_of(n): n.support for n in trie.nodes()}
        assert after[("c", "d")] == pytest.approx(before[("c", "d")] + 0.30)
        assert after[("a", "b")] == pytest.approx(before[("a", "b")] + 0.30)
        # Sub-graphs q3 does not contain are untouched (the q1 cycle).
        quad = next(k for k, _ in after.items() if len(k) == 4 and k == ("a", "a", "b", "b"))
        assert after[quad] == pytest.approx(before[quad])

    def test_matches_rebuild_from_scratch(self, trie):
        """Incremental update == full rebuild with the drifted workload."""
        drifted = figure1_workload().reweighted({"q3": 0.40, "q1": 0.30, "q2": 0.30})
        trie.apply_workload_frequencies(drifted)
        rebuilt = TPSTry.from_workload(drifted, trie.scheme)
        ours = {n.signature.key: round(n.support, 9) for n in trie.nodes()}
        theirs = {n.signature.key: round(n.support, 9) for n in rebuilt.nodes()}
        assert ours == theirs

    def test_motif_set_changes_after_drift(self, trie):
        assert labels_of(trie.node_for_graph(path_pattern(["b", "c", "d"]))) == ("b", "c", "d")
        before = {labels_of(n) for n in MotifIndex(trie, 0.4).motifs}
        assert ("b", "c", "d") not in before
        trie.update_frequency("q3", 0.45)
        after = {labels_of(n) for n in MotifIndex(trie, 0.4).motifs}
        assert ("b", "c", "d") in after  # q3's sub-path crossed the threshold

    def test_monotonicity_preserved(self, trie):
        trie.update_frequency("q2", 0.10)
        trie.update_frequency("q1", 0.75)
        assert trie.check_support_monotone()

    def test_unknown_query_raises(self, trie):
        with pytest.raises(KeyError, match="no query named"):
            trie.update_frequency("q99", 0.5)

    def test_invalid_frequency_raises(self, trie):
        with pytest.raises(ValueError):
            trie.update_frequency("q1", 0.0)

    def test_query_frequencies_view(self, trie):
        assert trie.query_frequencies() == pytest.approx(
            {"q1": 0.30, "q2": 0.60, "q3": 0.10}
        )
        trie.update_frequency("q1", 0.5)
        assert trie.query_frequencies()["q1"] == pytest.approx(0.5)

    def test_update_is_idempotent_for_same_value(self, trie):
        before = {n.signature.key: n.support for n in trie.nodes()}
        trie.update_frequency("q2", 0.60)
        after = {n.signature.key: n.support for n in trie.nodes()}
        assert before == pytest.approx(after)

    def test_unnamed_patterns_not_tracked(self):
        wl = Workload([(path_pattern(["a", "b"], name=""), 1.0)])
        # path_pattern defaults the name to "a-b"; force-empty names are
        # not registered for updates.
        trie = TPSTry(TPSTry.from_workload(wl).scheme)
        pattern = path_pattern(["a", "b"])
        pattern.name = ""
        trie.add_query(pattern, 1.0)
        assert trie.query_frequencies() == {}
