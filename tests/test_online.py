"""Tests for mid-stream ipt measurement with Ptemp as a partition."""

import pytest

from repro.core.loom import LoomPartitioner
from repro.datasets.registry import load_dataset
from repro.graph.stream import stream_edges
from repro.partitioning.state import PartitionState
from repro.query.online import snapshot_report, stream_with_snapshots


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("provgen", 600, seed=8)
    events = list(stream_edges(dataset.graph, "bfs", seed=8))
    return dataset, events


class TestSnapshots:
    def test_stream_with_snapshots_progression(self, setup):
        dataset, events = setup
        state = PartitionState.for_graph(4, dataset.graph.num_vertices)
        loom = LoomPartitioner(state, dataset.workload, window_size=100)
        snapshots = list(
            stream_with_snapshots(loom, events, dataset.workload, every=300)
        )
        assert len(snapshots) == len(events) // 300 + 1
        # Edges seen grows monotonically and ends at the full stream.
        seen = [s.edges_seen for s in snapshots]
        assert seen == sorted(seen)
        assert seen[-1] == len(events)
        # The final snapshot has an empty window (finalize drained it).
        assert snapshots[-1].vertices_in_window == 0
        assert snapshots[-1].vertices_placed == dataset.graph.num_vertices

    def test_mid_stream_snapshot_counts_ptemp(self, setup):
        dataset, events = setup
        state = PartitionState.for_graph(4, dataset.graph.num_vertices)
        loom = LoomPartitioner(state, dataset.workload, window_size=200)
        gen = stream_with_snapshots(loom, events, dataset.workload, every=400)
        first = next(gen)
        # Mid-stream, some vertices live only in Ptemp but every traversal
        # of the streamed-so-far graph still resolves.
        assert first.vertices_in_window > 0
        assert first.report.weighted_ipt >= 0.0

    def test_snapshot_view_is_readonly(self, setup):
        dataset, events = setup
        state = PartitionState.for_graph(4, dataset.graph.num_vertices)
        loom = LoomPartitioner(state, dataset.workload, window_size=100)
        for event in events[:200]:
            loom.ingest(event)
        from repro.graph.labelled_graph import LabelledGraph

        streamed = LabelledGraph()
        for event in events[:200]:
            streamed.add_edge(event.u, event.v, event.u_label, event.v_label)
        snapshot = snapshot_report(streamed, dataset.workload, loom)
        assert snapshot.edges_seen == streamed.num_edges
        from repro.query.online import _SnapshotView

        view = _SnapshotView(loom.state, loom.matcher.window.to_labelled_graph())
        with pytest.raises(TypeError):
            view.assign("x", 0)

    def test_every_validation(self, setup):
        dataset, events = setup
        state = PartitionState.for_graph(4, dataset.graph.num_vertices)
        loom = LoomPartitioner(state, dataset.workload, window_size=100)
        with pytest.raises(ValueError):
            list(stream_with_snapshots(loom, events, dataset.workload, every=0))

    def test_snapshot_ipt_includes_window_boundary(self, setup):
        """A snapshot's ipt can exceed the final ipt: edges between placed
        partitions and Ptemp are crossings the drained state won't have."""
        dataset, events = setup
        state = PartitionState.for_graph(4, dataset.graph.num_vertices)
        loom = LoomPartitioner(state, dataset.workload, window_size=400)
        snapshots = list(
            stream_with_snapshots(loom, events, dataset.workload, every=len(events))
        )
        final = snapshots[-1]
        assert final.vertices_in_window == 0
