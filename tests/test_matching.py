"""Tests for stream motif matching (Sec. 3, Alg. 2), anchored on Fig. 5.

The matcher runs on interned ids; tests translate through
:meth:`StreamMatcher.edge_key` / ``resolve_*`` at the boundary.
"""

import pytest

from repro.core.matching import Match, MatchList, StreamMatcher
from repro.core.motifs import MotifIndex
from repro.core.tpstry import TPSTry
from repro.core.window import LabelConflictError
from repro.graph.interning import pack_edge
from repro.graph.stream import EdgeEvent


def build_matcher(workload, window=100, **kwargs) -> StreamMatcher:
    trie = TPSTry.from_workload(workload)
    return StreamMatcher(MotifIndex(trie, 0.4), window, **kwargs)


def ek(matcher: StreamMatcher, u, v) -> int:
    """The packed key of the edge {u, v} as this matcher interned it."""
    key = matcher.edge_key(u, v)
    assert key is not None, f"edge {u}-{v} never seen by matcher"
    return key


def match_shapes(matcher: StreamMatcher, vertex):
    """The {(edge-set, motif-label-multiset)} view of matchList[vertex].

    Matches carry plan state ids; the exemplar is reached through the
    plan's debug boundary (``resolve_node``)."""
    vid = matcher.interner.id_of(vertex)
    if vid is None:
        return set()
    return {
        (
            frozenset(m.edges),  # matches carry canonical sorted tuples
            tuple(sorted(matcher.resolve_node(m).exemplar.labels().values())),
        )
        for m in matcher.matchlist.matches_at(vid)
    }


# Fig. 5's stream: vertices 1a 2b 3a 4b 5c, edges arriving e1..e5.
E1 = EdgeEvent(1, "a", 2, "b")
E2 = EdgeEvent(3, "a", 4, "b")
E3 = EdgeEvent(4, "b", 5, "c")
E4 = EdgeEvent(2, "b", 5, "c")
E5 = EdgeEvent(2, "b", 3, "a")


class TestFigure5Scenario:
    def test_single_edge_matches(self, fig5_workload):
        m = build_matcher(fig5_workload)
        assert m.offer(E1)
        e1 = ek(m, 1, 2)
        assert match_shapes(m, 1) == {(frozenset([e1]), ("a", "b"))}
        assert match_shapes(m, 2) == {(frozenset([e1]), ("a", "b"))}

    def test_extension_creates_abc_match(self, fig5_workload):
        """Adding e3 to e2 forms the a-b-c match (the paper's walkthrough)."""
        m = build_matcher(fig5_workload)
        m.offer(E1)
        m.offer(E2)
        m.offer(E3)
        expected = (frozenset([ek(m, 3, 4), ek(m, 4, 5)]), ("a", "b", "c"))
        assert expected in match_shapes(m, 3)
        assert expected in match_shapes(m, 4)
        assert expected in match_shapes(m, 5)

    def test_e4_forms_second_abc_match(self, fig5_workload):
        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4):
            m.offer(e)
        expected = (frozenset([ek(m, 1, 2), ek(m, 2, 5)]), ("a", "b", "c"))
        assert expected in match_shapes(m, 1)
        assert expected in match_shapes(m, 5)

    def test_e5_forms_aba_bab_and_abab(self, fig5_workload):
        """e5 = (2,3) creates m4 = a-b-a, m5 = b-a-b and, through a pair
        join with the existing ⟨e2, m1⟩, the m6 = a-b-a-b match."""
        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        e1, e2, e5 = ek(m, 1, 2), ek(m, 3, 4), ek(m, 2, 3)
        shapes2 = match_shapes(m, 2)
        assert (frozenset([e1, e5]), ("a", "a", "b")) in shapes2
        assert (frozenset([e2, e5]), ("a", "b", "b")) in shapes2
        abab = (frozenset([e1, e2, e5]), ("a", "a", "b", "b"))
        for vertex in (1, 2, 3, 4):
            assert abab in match_shapes(m, vertex)
        assert m.stats.pair_joins >= 1

    def test_eviction_order_and_me(self, fig5_workload):
        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        eviction = m.next_eviction()
        assert eviction.event is E1
        assert eviction.ekey == ek(m, 1, 2)
        # Every match in Me contains the evicted edge.
        assert all(eviction.ekey in match.edges for match in eviction.matches)
        # Sorted by support, descending; the single-edge match leads.
        supports = [match.support for match in eviction.matches]
        assert supports == sorted(supports, reverse=True)
        assert eviction.matches[0].edges == (eviction.ekey,)


class TestGate:
    def test_non_motif_edge_bypasses_window(self, fig1_workload):
        m = build_matcher(fig1_workload)
        assert not m.offer(EdgeEvent(1, "c", 2, "d"))  # c-d: 10% support
        assert m.pending() == 0
        assert m.stats.edges_bypassed == 1

    def test_unknown_labels_bypass(self, fig1_workload):
        m = build_matcher(fig1_workload)
        assert not m.offer(EdgeEvent(1, "z", 2, "z"))

    def test_motif_edge_enters_window(self, fig1_workload):
        m = build_matcher(fig1_workload)
        assert m.offer(EdgeEvent(1, "a", 2, "b"))
        assert m.pending() == 1

    def test_relabelled_duplicate_raises_and_is_counted(self, fig5_workload):
        """The window flags a duplicate edge whose labels contradict the
        buffered event (previously dropped without trace)."""
        m = build_matcher(fig5_workload)
        m.offer(EdgeEvent(1, "a", 2, "b"))
        with pytest.raises(LabelConflictError):
            m.offer(EdgeEvent(1, "b", 2, "a"))
        assert m.stats.label_conflicts == 1
        assert m.pending() == 1


class TestClusterRemoval:
    def test_remove_cluster_drops_touching_matches(self, fig5_workload):
        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        e1 = ek(m, 1, 2)
        m.remove_cluster({e1})
        for vertex in (1, 2, 3, 4, 5):
            vid = m.interner.id_of(vertex)
            for match in m.matchlist.matches_at(vid):
                assert e1 not in match.edges
        # e5's own single-edge match must survive.
        assert (frozenset([ek(m, 2, 3)]), ("a", "b")) in match_shapes(m, 2)

    def test_window_and_matchlist_stay_consistent(self, fig5_workload):
        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        m.remove_cluster({ek(m, 1, 2), ek(m, 3, 4)})
        window_edges = set(m.window.edges())
        for match in m.matchlist.all_matches():
            assert set(match.edges) <= window_edges


class TestMatchInvariants:
    def test_matches_are_connected_and_isomorphic_to_motif(self, fig5_workload):
        """Every match's edge set must actually be isomorphic (including
        labels) to its motif node's exemplar — checked with networkx."""
        import networkx as nx
        from networkx.algorithms.isomorphism import categorical_node_match

        m = build_matcher(fig5_workload)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        window_graph = m.window.to_labelled_graph()
        for match in m.matchlist.all_matches():
            sub = window_graph.edge_subgraph(m.resolve_edges(match))
            assert sub.is_connected()
            assert nx.is_isomorphic(
                sub.to_networkx(),
                m.resolve_node(match).exemplar.to_networkx(),
                node_match=categorical_node_match("label", None),
            )

    def test_cap_limits_matches_per_vertex(self, fig5_workload):
        m = build_matcher(fig5_workload, max_matches_per_vertex=1)
        for e in (E1, E2, E3, E4, E5):
            m.offer(e)
        # The mandatory single-edge matches always register; everything
        # beyond the cap is suppressed.
        for v in (1, 2, 3, 4, 5):
            vid = m.interner.id_of(v)
            multi = [x for x in m.matchlist.matches_at(vid) if x.num_edges > 1]
            assert not multi
        assert m.stats.capped_registrations > 0

    def test_cap_validation(self, fig5_workload):
        with pytest.raises(ValueError):
            build_matcher(fig5_workload, max_matches_per_vertex=0)


class TestMatchAndMatchList:
    def test_match_equality_and_hash(self):
        e = pack_edge(1, 2)
        assert Match(frozenset([e]), 0, 1.0) == Match(frozenset([e]), 0, 1.0)
        assert Match(frozenset([e]), 0, 1.0) != Match(frozenset([e]), 1, 1.0)
        assert len({Match(frozenset([e]), 0, 1.0), Match(frozenset([e]), 0, 1.0)}) == 1

    def test_match_degree_of(self):
        match = Match(frozenset([pack_edge(1, 2), pack_edge(2, 3)]), 0, 1.0)
        assert match.degree_of(2) == 2
        assert match.degree_of(1) == 1
        assert match.degree_of(9) == 0

    def test_sort_key_is_integer_based(self):
        """No repr() strings on the hot path: tie-breaks compare packed ids."""
        match = Match(frozenset([pack_edge(2, 1), pack_edge(2, 3)]), 0, 0.7)
        support, size, ties = match.sort_key()
        assert support == -0.7
        assert size == 2
        assert ties == (pack_edge(1, 2), pack_edge(2, 3))

    def test_matchlist_indexes(self):
        ml = MatchList()
        e = pack_edge(1, 2)
        match = Match(frozenset([e]), 0, 1.0)
        assert ml.add(match)
        assert not ml.add(match)  # duplicate
        assert ml.matches_at(1) == {match}
        assert ml.matches_containing_edge(e) == {match}
        ml.discard(match)
        assert ml.matches_at(1) == set()
        assert len(ml) == 0

    def test_drop_edges_returns_dropped(self):
        ml = MatchList()
        e1, e2 = pack_edge(1, 2), pack_edge(3, 4)
        m1, m2 = Match(frozenset([e1]), 0, 1.0), Match(frozenset([e2]), 0, 1.0)
        ml.add(m1)
        ml.add(m2)
        dropped = ml.drop_edges([e1])
        assert dropped == {m1}
        assert m2 in ml
