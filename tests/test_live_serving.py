"""The live cluster's correctness anchor.

:class:`~repro.runtime.live.LiveCluster` re-executes the serving engine's
partition-local DFS across real processes — so its contract is *bit
equality* with the single-process engine, which itself bit-matches the
offline executor's ``cut_traversals``.  This file pins that chain for
every partitioner, every router and several shard counts, on quiesced
and interleaved (ingest-while-serving) streams, plus the failure surface:
a killed or crashing server must become a diagnosable exception, never a
hang.
"""

import os
import pickle
import signal
import time

import pytest

from helpers import make_random_labelled_graph

from repro.graph.labelled_graph import LabelledGraph
from repro.graph.stream import batched, stream_edges
from repro.partitioning import registry
from repro.partitioning.registry import BUILTIN_SYSTEMS
from repro.partitioning.state import PartitionState
from repro.query.executor import WorkloadExecutor
from repro.query.pattern import cycle_pattern, path_pattern
from repro.query.workload import Workload
from repro.runtime.live import LiveCluster
from repro.runtime.liveness import ShardProcessError
from repro.runtime.messages import (
    SCHEMA_VERSION,
    CachePut,
    EdgeUpdate,
    IngestAck,
    InvalidationHops,
    QueryRequest,
    ServeSpec,
    ServerFailure,
    ServerStats,
    StatsRequest,
    StepReply,
    StepRequest,
    WIRE_TYPES,
    check_schema,
)
from repro.serving import ServingEngine
from repro.serving.router import BUILTIN_ROUTERS
from repro.serving.stores import RoutingIndex, ServingStores
from repro.serving.traffic import LiveTrafficDriver, TrafficDriver


def _random_case():
    graph = make_random_labelled_graph(60, 130, seed=11)
    workload = Workload(
        [
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
            (cycle_pattern(["a", "b", "a", "b"], name="abab"), 0.3),
            (path_pattern(["c", "b"], name="cb"), 0.2),
        ],
        name="random",
    )
    return graph, workload


def _partition(system, graph, workload, k, seed=0):
    state = PartitionState.for_graph(k, graph.num_vertices)
    partitioner = registry.create(
        system,
        state,
        graph=graph,
        workload=workload,
        window_size=max(8, graph.num_edges // 4),
        seed=seed,
    )
    partitioner.ingest_all(stream_edges(graph, "bfs", seed=seed))
    return state


def _report_rows(report):
    """A ServeReport's queries as comparable tuples (drops wall time)."""
    return [
        (
            q.name,
            q.frequency,
            q.embeddings,
            q.traversals,
            q.hops,
            q.border_expansions,
            q.partitions_contacted,
            q.roots_scanned,
            q.cache_hits,
            q.cache_misses,
        )
        for q in report.queries
    ]


# ----------------------------------------------------------------------
# Quiesced equivalence: cluster == engine == executor, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("system", BUILTIN_SYSTEMS)
def test_quiesced_cluster_matches_engine_and_executor(system):
    """For every partitioner: routed multi-process serving returns the
    engine's exact report, whose hops are the executor's cut_traversals."""
    graph, workload = _random_case()
    state = _partition(system, graph, workload, k=4)
    offline = WorkloadExecutor(graph, workload, embedding_limit=None).execute(state, system)
    engine = ServingEngine(graph, state, workload, cache=True)
    served = engine.execute_workload(system)
    with LiveCluster(graph, state, workload, num_shards=2, cache=True) as cluster:
        live = cluster.execute_workload(system)
    assert _report_rows(live) == _report_rows(served)
    offline_by_name = {q.name: q for q in offline.queries}
    for query in live.queries:
        assert query.hops == offline_by_name[query.name].cut_traversals


@pytest.mark.parametrize("router", BUILTIN_ROUTERS)
def test_quiesced_every_router(router):
    """Routing changes dispatch order, never answers — live included."""
    graph, workload = _random_case()
    state = _partition("ldg", graph, workload, k=4)
    engine = ServingEngine(graph, state, workload, router=router, cache=True)
    served = engine.execute_workload("ldg")
    with LiveCluster(
        graph, state, workload, num_shards=2, router=router, cache=True
    ) as cluster:
        live = cluster.execute_workload("ldg")
    assert _report_rows(live) == _report_rows(served)


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_quiesced_shard_count_invariance(num_shards):
    """Answers, hops and cache stats are independent of the shard count."""
    graph, workload = _random_case()
    state = _partition("loom", graph, workload, k=4)
    engine = ServingEngine(graph, state, workload, cache=True)
    served = engine.execute_workload("loom")
    with LiveCluster(graph, state, workload, num_shards=num_shards, cache=True) as cluster:
        live = cluster.execute_workload("loom")
        stats = cluster.stats()
    assert _report_rows(live) == _report_rows(served)
    if num_shards == 1:
        assert stats["hop_messages_sent"] == 0  # one shard owns everything
    # Summed shard cache stats must equal the engine's cache counters.
    totals = {"hits": 0, "misses": 0, "entries": 0}
    for shard in stats["shards"]:
        for key in totals:
            totals[key] += shard["cache_stats"][key]
    assert totals["hits"] == engine.cache.hits
    assert totals["misses"] == engine.cache.misses


# ----------------------------------------------------------------------
# Interleaved ingest/serve: lock-step rounds keep bit equality
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cache", [True, False])
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_interleaved_ingest_serve_matches_engine(num_shards, cache):
    """Serve bursts between ingest rounds: every answer, hop count and
    cache flag equals the single-process engine's, cache on or off."""
    graph, workload = _random_case()
    events = list(stream_edges(graph, "random", seed=3))

    def engine_transcript():
        state = PartitionState.for_graph(4, graph.num_vertices)
        partitioner = registry.create(
            "loom", state, graph=graph, workload=workload, window_size=30, seed=0
        )
        live_graph = LabelledGraph("live")
        engine = ServingEngine(
            live_graph, state, workload, partitioner=partitioner, cache=cache
        )
        transcript = []
        for chunk in batched(events, 37):
            engine.ingest(chunk)
            _serve_burst(engine, transcript)
        engine.finalize()
        _serve_burst(engine, transcript)
        cache_stats = engine.cache.stats() if engine.cache is not None else None
        return transcript, cache_stats

    def cluster_transcript():
        state = PartitionState.for_graph(4, graph.num_vertices)
        partitioner = registry.create(
            "loom", state, graph=graph, workload=workload, window_size=30, seed=0
        )
        live_graph = LabelledGraph("live")
        transcript = []
        with LiveCluster(
            live_graph,
            state,
            workload,
            num_shards=num_shards,
            cache=cache,
            partitioner=partitioner,
        ) as cluster:
            for chunk in batched(events, 37):
                cluster.ingest(chunk)
                _serve_burst(cluster, transcript)
            cluster.finalize()
            _serve_burst(cluster, transcript)
            cache_totals = None
            if cache:
                cache_totals = {"hits": 0, "misses": 0, "entries": 0, "invalidations": 0}
                for shard in cluster.shard_stats():
                    for key in cache_totals:
                        cache_totals[key] += shard.cache_stats[key]
        return transcript, cache_totals

    expected, engine_cache = engine_transcript()
    actual, cluster_cache = cluster_transcript()
    assert actual == expected
    if cache:
        assert cluster_cache == {
            key: engine_cache[key]
            for key in ("hits", "misses", "entries", "invalidations")
        }


def _serve_burst(server, transcript):
    """Serve every (query, candidate root) once; append comparable rows.

    Works against an engine or a cluster — both expose ``query_names`` /
    ``root_candidates`` / ``serve_root``.
    """
    for name in server.query_names():
        for root in server.root_candidates(name):
            result = server.serve_root(name, root)
            transcript.append(
                (name, root, result.embeddings, result.hops, result.border_expansions)
            )


# ----------------------------------------------------------------------
# Concurrent traffic: overlap changes timing, never answers
# ----------------------------------------------------------------------
def test_live_traffic_answers_invariant_across_shards_and_inflight():
    graph, workload = _random_case()
    golden = None
    for num_shards, inflight in ((1, 1), (2, 8), (4, 4)):
        state = _partition("loom", graph, workload, k=4)
        with LiveCluster(graph, state, workload, num_shards=num_shards) as cluster:
            driver = LiveTrafficDriver(cluster, seed=3, zipf_s=0.8)
            report = driver.run(
                150, system="loom", inflight=inflight, collect_results=True
            )
        rows = [(r.query, r.root, r.embeddings, r.hops) for r in report.results]
        assert report.requests == 150 and len(rows) == 150
        if golden is None:
            golden = rows
        else:
            assert rows == golden


def test_live_sample_stream_matches_engine_sample_stream():
    """Same seed → the identical (query, root) stream from either surface."""
    graph, workload = _random_case()
    state = _partition("ldg", graph, workload, k=4)
    engine = ServingEngine(graph, state, workload)
    engine_stream = TrafficDriver(engine, seed=5, zipf_s=1.1).sample(200)
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        live_stream = LiveTrafficDriver(cluster, seed=5, zipf_s=1.1).sample(200)
    assert live_stream == engine_stream


def test_live_traffic_open_loop_measures_from_scheduled_arrival():
    graph, workload = _random_case()
    state = _partition("hash", graph, workload, k=4)
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        driver = LiveTrafficDriver(cluster, seed=1)
        report = driver.run(60, system="hash", inflight=4, rate=2000.0)
    assert report.mode == "open"
    assert report.rate == 2000.0
    assert report.requests == 60
    # 60 arrivals at 2000/s are spread over 30ms of scheduled time.
    assert report.wall_seconds >= 60 / 2000.0 * 0.5


def test_live_traffic_open_loop_terminates_when_behind_schedule():
    """An arrival rate the cluster can't keep up with must still drain.

    Once the loop falls behind, every next arrival is already due, so the
    poll budget is 0 on every iteration — a zero-budget poll that never
    reads the reply queue would spin forever at the in-flight cap
    (regression: the soft deadline in ``_next_message`` short-circuited
    before attempting a read).
    """
    graph, workload = _random_case()
    state = _partition("hash", graph, workload, k=4)
    start = time.monotonic()
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        driver = LiveTrafficDriver(cluster, seed=7)
        report = driver.run(80, system="hash", inflight=2, rate=1e9)
    assert report.requests == 80
    assert time.monotonic() - start < 60


def test_unplaced_root_short_circuits():
    """A root the partitioner never placed is answered driver-side, empty."""
    graph, workload = _random_case()
    state = _partition("ldg", graph, workload, k=4)
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        result = cluster.serve_root("abc", 10**9)
        assert result.embeddings == () and result.hops == 0


# ----------------------------------------------------------------------
# Failure surface: death and poison become diagnosable errors
# ----------------------------------------------------------------------
def test_killed_server_raises_with_signal_name_quickly():
    graph, workload = _random_case()
    state = _partition("ldg", graph, workload, k=4)
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        driver = LiveTrafficDriver(cluster, seed=2)
        requests = driver.sample(200)
        victim = cluster._servers[0]
        os.kill(victim.pid, signal.SIGKILL)
        start = time.monotonic()
        with pytest.raises(ShardProcessError) as excinfo:
            for name, root in requests:
                cluster.serve_root(name, root)
        elapsed = time.monotonic() - start
    assert elapsed < 30.0, "dead server must surface fast, not via timeout"
    assert excinfo.value.shard_id == 0
    assert "SIGKILL" in str(excinfo.value)
    assert excinfo.value.remote_traceback is None  # died without reporting


def test_poison_message_surfaces_remote_traceback():
    graph, workload = _random_case()
    state = _partition("ldg", graph, workload, k=4)
    with LiveCluster(graph, state, workload, num_shards=2) as cluster:
        cluster._request_queues[0].put("not a wire message")
        with pytest.raises(ShardProcessError) as excinfo:
            # Keep serving until the failure envelope comes back.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for name in cluster.query_names():
                    for root in cluster.root_candidates(name):
                        cluster.serve_root(name, root)
    assert excinfo.value.shard_id == 0
    assert excinfo.value.remote_traceback is not None
    assert "Traceback" in excinfo.value.remote_traceback


# ----------------------------------------------------------------------
# Wire discipline: slots, tuple encodings, schema version
# ----------------------------------------------------------------------
_WIRE_SAMPLES = [
    ServeSpec(shard_id=1, num_shards=4, k=8, query_depths=(("abc", 2),)),
    EdgeUpdate(3, ((5, 0, 1),), ((5, 0, 1, 6, 1, 2),), ("abc",)),
    InvalidationHops(3, ((7, 1), (9, 2))),
    IngestAck(1, 3, 2, ((7, 1, 0),)),
    QueryRequest(11, None, 5, 1),
    StepRequest(11, 2, None, None),
    StepReply(11, 2, 1, 3, (), cached=False, result=None),
    CachePut("abc", (0, 1, 2), 5, None, 3),
    StatsRequest(1),
    ServerStats(1, 3, 10, 2, 20, 4, 7, 3, 3, 5, {"hits": 1}),
]


@pytest.mark.parametrize(
    "message", _WIRE_SAMPLES, ids=[type(m).__name__ for m in _WIRE_SAMPLES]
)
def test_wire_messages_pickle_roundtrip_without_dict(message):
    assert not hasattr(message, "__dict__"), "wire types must be __slots__-only"
    clone = pickle.loads(pickle.dumps(message))
    for slot in type(message).__slots__:
        assert getattr(clone, slot) == getattr(message, slot)
    check_schema(clone)  # current-version messages pass


def test_every_wire_type_declares_slots_and_schema_version():
    for cls in WIRE_TYPES:
        assert hasattr(cls, "__slots__"), cls.__name__
        assert getattr(cls, "schema_version", None) == SCHEMA_VERSION, cls.__name__
        assert "__reduce__" in cls.__dict__, cls.__name__


def test_schema_mismatch_is_rejected():
    class Future:
        schema_version = SCHEMA_VERSION + 1

    with pytest.raises(RuntimeError, match="schema mismatch"):
        check_schema(Future())
    check_schema(ServerFailure(0, "boom", "tb"))  # same version passes


def test_detlint_mp_pickle_scope_covers_live_modules():
    """The MP-pickle rule must patrol every module that touches a queue."""
    from repro.analysis.engine import rule_applies

    for path in (
        "src/repro/runtime/server.py",
        "src/repro/runtime/live.py",
        "src/repro/runtime/messages.py",
        "src/repro/runtime/driver.py",
    ):
        assert rule_applies("MP-pickle", path), path


# ----------------------------------------------------------------------
# RoutingIndex: the driver's adjacency-free twin of ServingStores
# ----------------------------------------------------------------------
def test_routing_index_agrees_with_serving_stores():
    graph, workload = _random_case()
    state = _partition("fennel", graph, workload, k=4)
    stores = ServingStores.from_state(graph, state)
    index = RoutingIndex.from_state(graph, state)
    assert index.num_vertices == stores.num_vertices
    assert index.num_edges == stores.num_edges
    assert index.num_border_edges == stores.num_border_edges
    for label_id in range(len(graph.label_set())):
        assert index.all_candidates(label_id) == stores.all_candidates(label_id)
        assert index.candidate_counts(label_id) == stores.candidate_counts(label_id)
        for p in range(state.k):
            assert index.candidates(p, label_id) == stores.candidates(p, label_id)
