"""Tests for the support-filtered motif index (Sec. 3)."""

import pytest

from repro.core.motifs import MotifIndex
from repro.core.tpstry import TPSTry


class TestFigure1Motifs:
    def test_motif_count(self, fig1_index):
        assert fig1_index.num_motifs == 3

    def test_single_edge_motifs(self, fig1_index):
        roots = fig1_index.single_edge_motifs()
        pairs = {tuple(sorted(n.exemplar.labels().values())) for n in roots}
        assert pairs == {("a", "b"), ("b", "c")}

    def test_single_edge_lookup_hit(self, fig1_index):
        assert fig1_index.single_edge_motif("a", "b") is not None
        assert fig1_index.single_edge_motif("b", "a") is not None

    def test_single_edge_lookup_miss(self, fig1_index):
        # c-d exists in the trie (support 10%) but is not a motif at 40%.
        assert fig1_index.single_edge_motif("c", "d") is None
        # x-y is not even in the trie.
        assert fig1_index.single_edge_motif("x", "y") is None

    def test_max_motif_edges(self, fig1_index):
        assert fig1_index.max_motif_edges == 2

    def test_motif_children_only_motifs(self, fig1_index):
        """Extending a-b by a b-c edge reaches the a-b-c motif."""
        ab = fig1_index.single_edge_motif("a", "b")
        scheme = fig1_index.scheme
        # adding b-c to the lone a-b edge: b has degree 1 already, c is new.
        delta = scheme.addition_factors("b", "c", 1, 0)
        children = fig1_index.motif_children(ab, delta)
        assert len(children) == 1
        assert sorted(children[0].exemplar.labels().values()) == ["a", "b", "c"]

    def test_motif_children_miss_for_nonmotif_extension(self, fig1_index):
        """Extending b-c by a c-d edge leads to b-c-d (10%): not a motif."""
        bc = fig1_index.single_edge_motif("b", "c")
        delta = fig1_index.scheme.addition_factors("c", "d", 1, 0)
        assert fig1_index.motif_children(bc, delta) == []

    def test_is_motif(self, fig1_trie, fig1_index):
        for node in fig1_trie.nodes():
            assert fig1_index.is_motif(node) == (node.support + 1e-9 >= 0.4)


class TestThresholds:
    def test_threshold_validation(self, fig1_trie):
        with pytest.raises(ValueError):
            MotifIndex(fig1_trie, 0.0)
        with pytest.raises(ValueError):
            MotifIndex(fig1_trie, 1.01)

    def test_low_threshold_admits_everything(self, fig1_trie):
        index = MotifIndex(fig1_trie, 0.05)
        assert index.num_motifs == fig1_trie.num_nodes

    def test_threshold_exactly_at_support(self, fig1_trie):
        """Support == T counts as a motif ('at least T', Sec. 1.3)."""
        index = MotifIndex(fig1_trie, 0.7)
        names = {tuple(sorted(n.exemplar.labels().values())) for n in index.motifs}
        assert ("b", "c") in names
        assert ("a", "b", "c") in names

    def test_downward_closure(self, fig1_trie):
        """Every ancestor of a motif is a motif (support monotonicity)."""
        for threshold in (0.1, 0.4, 0.7):
            index = MotifIndex(fig1_trie, threshold)
            motif_ids = {m.node_id for m in index.motifs}
            for m in index.motifs:
                for parent in m.parents:
                    if parent is not fig1_trie.root:
                        assert parent.node_id in motif_ids


class TestFig5Motifs:
    def test_six_motifs(self, fig5_workload):
        trie = TPSTry.from_workload(fig5_workload)
        index = MotifIndex(trie, 0.4)
        shapes = sorted(
            tuple(sorted(m.exemplar.labels().values())) for m in index.motifs
        )
        assert shapes == sorted(
            [
                ("a", "b"),
                ("b", "c"),
                ("a", "b", "c"),
                ("a", "a", "b"),
                ("a", "b", "b"),
                ("a", "a", "b", "b"),
            ]
        )
