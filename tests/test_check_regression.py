"""The benchmark regression gate: fails on slowdowns, passes on baselines."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _write(tmp_path, name, results):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmark": "fake", "results": results}))
    return str(path)


class TestCollectGatedRows:
    def test_flat_per_system_shape(self):
        rows = check_regression.collect_gated_rows(
            {"ldg": {"gain_vs_baseline": 1.1}, "hash": {"speedup": 0.6}}
        )
        assert [r["label"] for r in rows] == ["ldg"]

    def test_nested_scaling_shape(self):
        rows = check_regression.collect_gated_rows(
            {"loom": {"s1": {"gain_vs_baseline": 1.0}, "s4": {"gain_vs_baseline": 0.5}}}
        )
        assert sorted(r["label"] for r in rows) == ["loom.s1", "loom.s4"]

    def test_single_row_matcher_shape(self):
        rows = check_regression.collect_gated_rows(
            {"edges_per_sec": 58044.2, "gain_vs_baseline": 0.99}
        )
        assert [r["label"] for r in rows] == ["<root>"]

    def test_serving_shape(self):
        rows = check_regression.collect_gated_rows(
            {
                "hash": {"queries_per_sec": 1000.0, "gain_vs_baseline": 1.0},
                "loom": {"queries_per_sec": 1300.0, "gain_vs_baseline": 1.1},
            }
        )
        assert sorted(r["label"] for r in rows) == ["hash", "loom"]


class TestGate:
    def test_injected_slowdown_fails(self, tmp_path, capsys):
        """The acceptance case: a fake bench payload with a regressed
        system must exit 1 and name the regression in the table."""
        path = _write(
            tmp_path,
            "slow.json",
            {
                "ldg": {
                    "gain_vs_baseline": 0.5,
                    "baseline_edges_per_sec": 1_000_000,
                    "current_edges_per_sec": 500_000,
                },
                "loom": {"gain_vs_baseline": 1.2},
            },
        )
        assert check_regression.main([path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "ldg" in out

    def test_healthy_gains_pass(self, tmp_path):
        path = _write(
            tmp_path, "ok.json", {"ldg": {"gain_vs_baseline": 1.0}}
        )
        assert check_regression.main([path]) == 0

    def test_threshold_is_configurable(self, tmp_path):
        path = _write(tmp_path, "borderline.json", {"x": {"gain_vs_baseline": 0.9}})
        assert check_regression.main([path]) == 0
        assert check_regression.main([path, "--threshold", "0.95"]) == 1

    def test_regressed_shard_count_fails(self, tmp_path):
        path = _write(
            tmp_path,
            "scale.json",
            {"loom": {"s1": {"gain_vs_baseline": 1.0}, "s4": {"gain_vs_baseline": 0.3}}},
        )
        assert check_regression.main([path]) == 1

    def test_no_gated_rows_passes_unless_strict(self, tmp_path):
        path = _write(tmp_path, "smoke.json", {"ldg": {"current_edges_per_sec": 1.0}})
        assert check_regression.main([path]) == 0
        assert check_regression.main([path, "--strict"]) == 1

    def test_unreadable_file_fails(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert check_regression.main([str(path)]) == 1

    def test_multiple_files_any_failure_wins(self, tmp_path):
        good = _write(tmp_path, "good.json", {"a": {"gain_vs_baseline": 1.0}})
        bad = _write(tmp_path, "bad.json", {"b": {"gain_vs_baseline": 0.1}})
        assert check_regression.main([good, bad]) == 1

    def test_serving_rate_rendered(self, tmp_path, capsys):
        """The serving payload's queries/s columns feed the delta table."""
        path = _write(
            tmp_path,
            "serving.json",
            {
                "loom": {
                    "queries_per_sec": 1300.0,
                    "baseline_queries_per_sec": 1250.0,
                    "gain_vs_baseline": 1.04,
                }
            },
        )
        assert check_regression.main([path]) == 0
        out = capsys.readouterr().out
        assert "1,300" in out and "1,250" in out


class TestCommittedBaselines:
    """CI runs this gate against the committed payloads — they must pass."""

    @pytest.mark.parametrize(
        "name",
        [
            "BENCH_throughput.json",
            "BENCH_matcher.json",
            "BENCH_scaling.json",
            "BENCH_serving.json",
        ],
    )
    def test_committed_payload_passes(self, name):
        path = REPO / name
        assert path.exists(), f"{name} must stay committed (CI gates on it)"
        assert check_regression.main([str(path)]) == 0


class TestMissingBaselines:
    """A missing committed baseline file/row must exit nonzero with a
    message naming the missing thing — never an unhandled traceback."""

    def test_missing_file_named(self, tmp_path, capsys):
        missing = str(tmp_path / "BENCH_gone.json")
        assert check_regression.main([missing]) == 1
        err = capsys.readouterr().err
        assert "BENCH_gone.json" in err and "missing" in err

    def test_row_without_numeric_gain_named(self, tmp_path, capsys):
        path = _write(tmp_path, "partial.json", {"loom": {"gain_vs_baseline": None}})
        assert check_regression.main([path]) == 1
        err = capsys.readouterr().err
        assert "loom" in err and "gain_vs_baseline" in err

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert check_regression.main([str(path)]) == 1


class TestDBMode:
    """`check_regression --db results.db` delegates to the experiment gate."""

    def _replay(self, db_path, gain):
        sys.path.insert(0, str(REPO / "src"))
        from repro.experiment.db import ResultsDB
        from repro.experiment.spec import ExperimentSpec

        spec = ExperimentSpec.from_mapping(
            {
                "experiment": {"name": "db-mode"},
                "trial": [{"bench": "synthetic", "id": "t", "gate": {"strict": True}}],
            }
        )
        with ResultsDB(db_path) as db:
            exp = db.ensure_experiment(spec.name, spec.spec_hash, spec.to_json())
            db.record_trial(
                exp,
                trial_id="t",
                bench="synthetic",
                params={},
                seed=0,
                status="ok",
                duration_seconds=0.0,
                metrics={"gain_vs_baseline": gain, "edges_per_sec": 100.0},
            )

    def test_db_gate_passes_and_fails(self, tmp_path):
        good = str(tmp_path / "good.db")
        self._replay(good, gain=1.0)
        assert check_regression.main(["--db", good]) == 0
        bad = str(tmp_path / "bad.db")
        self._replay(bad, gain=0.2)
        assert check_regression.main(["--db", bad]) == 1

    def test_missing_db_named(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.db")
        assert check_regression.main(["--db", missing]) == 1
        assert "nope.db" in capsys.readouterr().err
