"""Determinism under hash-seed variation and address-based vertex reprs.

The bug class this pins down: the seed matcher ordered matches, edges and
vertices by ``repr()`` strings.  For vertex objects without a value-based
``__repr__`` the default repr embeds the memory address, so stream
orderings and auction tie-breaks varied from run to run — assignments were
not reproducible.  After the interned-id refactor every ordering on the
hot path is an integer comparison, so a full Loom pass must be
bit-identical across interpreter runs regardless of ``PYTHONHASHSEED`` or
address-space layout.

The check runs the same pipeline in fresh subprocesses (different hash
seeds randomise both ``str``/``tuple`` hashing and allocation layout) and
compares the JSON-serialised assignments.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

# The pipeline under test, run in a pristine interpreter.  ``Opaque``
# deliberately defines no __repr__/__eq__/__hash__: its repr embeds the
# object's memory address and its hash follows id(), the worst case for
# any ordering that is not value-based.
PIPELINE = """
import json, random, sys

from repro.core.loom import LoomPartitioner
from repro.graph.labelled_graph import LabelledGraph
from repro.graph.stream import stream_edges
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload


class Opaque:
    __slots__ = ("tag",)

    def __init__(self, tag):
        self.tag = tag


LABELS = ["a", "b", "c"]
N, E = 60, 140

# Make the heap layout hash-seed-dependent: allocate a block of objects in
# Opaque's size class, then free a PYTHONHASHSEED-dependent subset.  The
# vertices below are served from that seed-dependent freelist, so their
# addresses — and any ordering built on default reprs — differ between
# runs.  A clean interpreter otherwise hands out reproducible offsets,
# which can mask address-based orderings; a long-lived process has no such
# luck, and neither does this test.
_dummies = [Opaque(-1) for _ in range(1024)]
_kept = [d for i, d in enumerate(_dummies) if hash((i, "pad")) % 3 == 0]
del _dummies

rng = random.Random(4)
vertices = [Opaque(i) for i in range(N)]
g = LabelledGraph("opaque")
for v in vertices:
    g.add_vertex(v, LABELS[v.tag % 3])
for i in range(1, N):
    g.add_edge(vertices[i - 1], vertices[i])
added = N - 1
while added < E:
    a, b = rng.randrange(N), rng.randrange(N)
    if a != b and not g.has_edge(vertices[a], vertices[b]):
        g.add_edge(vertices[a], vertices[b])
        added += 1

workload = Workload(
    [
        (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
        (path_pattern(["a", "b", "c"], name="abc"), 0.5),
    ],
    name="determinism",
)
events = list(stream_edges(g, sys.argv[1], seed=3))
state = PartitionState.for_graph(4, g.num_vertices)
loom = LoomPartitioner(state, workload, window_size=40, seed=0)
loom.ingest_all(events)

assignment = sorted((v.tag, p) for v, p in state.assignment().items())
stream_tags = [(ev.u.tag, ev.v.tag) for ev in events]
print(json.dumps({
    "stream": stream_tags,
    "assignment": assignment,
    # Matcher/plan counters must be equally hash-seed-independent: a stats
    # divergence would reveal an ordering leak even if assignments agree.
    "matcher_stats": loom.matcher.stats.as_dict(),
}))
"""


def _run_pipeline(order: str, hashseed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", PIPELINE, order],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("order", ["bfs", "random"])
def test_loom_assignments_invariant_under_hashseed(order):
    """Two full Loom passes in subprocesses with different hash seeds (and
    therefore different object addresses) must agree bit for bit — on the
    emitted stream *and* on the final assignment."""
    runs = [_run_pipeline(order, seed) for seed in (1, 2, 4242)]
    assert runs[0]["stream"] == runs[1]["stream"] == runs[2]["stream"]
    assert runs[0]["assignment"] == runs[1]["assignment"] == runs[2]["assignment"]
    assert (
        runs[0]["matcher_stats"] == runs[1]["matcher_stats"] == runs[2]["matcher_stats"]
    )
    # Sanity: the pass actually placed the whole graph.
    assert len(runs[0]["assignment"]) == 60
