"""Tests for the Fig. 4 collision-probability model (Sec. 2.3)."""


import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.core import collision


class TestBinomialCdf:
    def test_edges(self):
        assert collision.binomial_cdf(-1, 10, 0.1) == 0.0
        assert collision.binomial_cdf(10, 10, 0.1) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 60),
        k=st.integers(0, 60),
        q=st.floats(0.001, 0.999),
    )
    def test_matches_scipy(self, n, k, q):
        ours = collision.binomial_cdf(min(k, n), n, q)
        theirs = scipy_stats.binom.cdf(min(k, n), n, q)
        assert ours == pytest.approx(float(theirs), abs=1e-9)


class TestAcceptanceProbability:
    def test_monotone_in_p(self):
        """Larger primes -> fewer collisions -> higher acceptance."""
        probs = [
            collision.acceptance_probability(48, p, 0.05)
            for p in (11, 31, 101, 251)
        ]
        assert probs == sorted(probs)

    def test_monotone_in_tolerance(self):
        probs = [
            collision.acceptance_probability(48, 31, tol) for tol in (0.05, 0.10, 0.20)
        ]
        assert probs == sorted(probs)

    def test_paper_default_prime_is_negligible_risk(self):
        """Sec. 2.3: p = 251 gives 'negligible probability of significant
        factor collisions' even for 16-edge queries at 5% tolerance."""
        assert collision.acceptance_probability(48, 251, 0.05) > 0.95

    def test_tiny_prime_is_bad(self):
        assert collision.acceptance_probability(48, 3, 0.05) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            collision.acceptance_probability(0, 11, 0.05)
        with pytest.raises(ValueError):
            collision.acceptance_probability(10, 11, 1.5)
        with pytest.raises(ValueError):
            collision.factor_collision_probability(1)

    def test_num_factors_for_edges(self):
        """3|E| factors: one per edge plus one per unit of total degree."""
        assert collision.num_factors_for_edges(8) == 24
        assert collision.num_factors_for_edges(16) == 48
        with pytest.raises(ValueError):
            collision.num_factors_for_edges(-1)


class TestPrimes:
    def test_primes_up_to(self):
        assert collision.primes_up_to(20) == [2, 3, 5, 7, 11, 13, 17, 19]
        assert collision.primes_up_to(1) == []

    def test_fig4_x_axis_ends_at_317(self):
        primes = collision.primes_up_to(collision.PAPER_MAX_P)
        assert primes[-1] == 317


class TestCurves:
    def test_acceptance_curve_shape(self):
        curve = collision.acceptance_curve(24, 0.05, max_p=100)
        assert len(curve.p_values) == len(curve.probabilities)
        assert curve.probabilities[-1] > curve.probabilities[0]
        rows = curve.as_rows()
        assert rows[0]["factors"] == 24

    def test_figure4_curves_structure(self):
        curves = collision.figure4_curves(max_p=50)
        assert set(curves) == {0.05, 0.10, 0.20}
        for panel in curves.values():
            assert [c.num_factors for c in panel] == [24, 36, 48]

    def test_fewer_factors_accept_more(self):
        """At a fixed prime, smaller graphs have fewer chances to collide."""
        p24 = collision.acceptance_probability(24, 31, 0.05)
        p48 = collision.acceptance_probability(48, 31, 0.05)
        assert p24 >= p48


class TestPrimeSelection:
    def test_smallest_acceptable_prime(self):
        p = collision.smallest_acceptable_prime(48, 0.05, 0.95)
        assert collision.acceptance_probability(48, p, 0.05) >= 0.95
        assert p <= 251

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            collision.smallest_acceptable_prime(48, 0.0, 1.0, max_p=10)

    def test_validate_prime_choice(self):
        assert collision.validate_prime_choice(251) > 0.9
        with pytest.raises(ValueError):
            collision.validate_prime_choice(250)
