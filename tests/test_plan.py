"""MotifPlan ⇔ MotifIndex equivalence: the compile step is representation only.

The plan is a lowering of the object index — every lookup must agree with
the object-level answer under the node ↔ state bijection:

* root lookups for **every label pair** (motif, non-motif, unknown),
* successor lookups for **every (state, delta) probe** — every delta key
  appearing anywhere in the trie, plus every (label, label, degree, degree)
  combination in the matcher's probe domain,
* per-state metadata arrays against the nodes they were lowered from,

on the paper's fixture workloads *and* on randomized workloads.  Finally,
full-pipeline assignments must be **bit-identical pre/post compile**: the
golden digests below were produced by the pre-plan (object-walking)
matcher on seeded streams, and the compiled pipeline must reproduce them
exactly.
"""

import hashlib
import json
import math
import random

import pytest

from repro.core.loom import LoomPartitioner
from repro.core.motifs import MotifIndex
from repro.core.plan import NO_STATE, MotifPlan
from repro.core.signature import pack_delta_key
from repro.core.tpstry import TPSTry
from repro.graph.stream import synthetic_stream
from repro.partitioning.state import PartitionState
from repro.query.pattern import cycle_pattern, path_pattern
from repro.query.workload import Workload

ALPHABET = ["a", "b", "c", "d", "e"]


def random_workload(seed: int) -> Workload:
    """A few random path/cycle patterns with random frequencies."""
    rng = random.Random(seed)
    entries = []
    total = rng.randint(2, 4)
    weights = [rng.randint(1, 10) for _ in range(total)]
    norm = sum(weights)
    for i in range(total):
        length = rng.randint(2, 4)
        labels = [rng.choice(ALPHABET) for _ in range(length + 1)]
        if rng.random() < 0.3 and length >= 3:
            pattern = cycle_pattern(labels[:-1], name=f"q{i}")
        else:
            pattern = path_pattern(labels, name=f"q{i}")
        entries.append((pattern, weights[i] / norm))
    return Workload(entries, name=f"rand{seed}")


def all_delta_keys(trie: TPSTry):
    """Every factor-delta key appearing on any trie edge (not just motifs)."""
    keys = set()
    for node in trie.nodes(include_root=True):
        keys.update(node.children_by_delta)
    return keys


def assert_plan_matches_index(index: MotifIndex, plan: MotifPlan) -> None:
    trie = index.trie
    state_of = {n.node_id: s for s, n in enumerate(index.motifs)}

    # -- state metadata ------------------------------------------------
    assert plan.num_states == index.num_motifs
    for state, node in enumerate(index.motifs):
        assert plan.node_of(state) is node
        assert plan.state_of(node) == state
        assert plan.support[state] == node.support
        assert plan.num_edges[state] == node.num_edges
        assert plan.extensible[state] == (node.node_id in index.extensible_ids)
        exemplar = node.exemplar
        assert plan.max_degree[state] == max(
            exemplar.degree(v) for v in exemplar.vertices()
        )
    assert plan.max_motif_edges == index.max_motif_edges
    for node in trie.nodes():
        if node.node_id not in state_of:
            assert plan.state_of(node) is None

    # -- root lookup: every ordered label pair, plus unknown labels ----
    labels = sorted(trie.scheme.known_labels()) + ["zz-unknown"]
    for lu in labels:
        for lv in labels:
            node = index.single_edge_motif(lu, lv)
            state, lu_id, lv_id = plan.root_entry(lu, lv)
            if node is None:
                assert state == NO_STATE
            else:
                assert state == state_of[node.node_id]
            assert plan.labels.label(lu_id) == lu
            assert plan.labels.label(lv_id) == lv

    # -- successor lookup: every (motif state, delta key) probe --------
    deltas = all_delta_keys(trie)
    for state, node in enumerate(index.motifs):
        for delta_key in deltas:
            expected = [
                state_of[c.node_id]
                for c in index.motif_children_by_key(node, delta_key)
            ]
            assert list(plan.successors_by_delta_key(state, delta_key)) == expected

    # -- probe-domain equivalence: (labels × degrees) → successors -----
    max_deg = max(plan.max_degree, default=0)
    scheme = trie.scheme
    known = sorted(scheme.known_labels())
    for lu in known:
        for lv in known:
            lu_id = plan.labels.id_of(lu)
            lv_id = plan.labels.id_of(lv)
            for du in range(max_deg + 1):
                for dv in range(max_deg + 1):
                    delta_key = scheme.addition_key(lu, lv, du, dv)
                    for state, node in enumerate(index.motifs):
                        expected = [
                            state_of[c.node_id]
                            for c in index.motif_children_by_key(node, delta_key)
                        ]
                        got = list(plan.successors(state, lu_id, lv_id, du, dv))
                        assert got == expected


class TestFixtureEquivalence:
    def test_fig1_plan_matches_index(self, fig1_index):
        assert_plan_matches_index(fig1_index, fig1_index.compile())

    def test_fig5_plan_matches_index(self, fig5_workload):
        index = MotifIndex(TPSTry.from_workload(fig5_workload), 0.4)
        assert_plan_matches_index(index, index.compile())

    def test_tpstry_compile_convenience(self, fig5_workload):
        trie = TPSTry.from_workload(fig5_workload)
        plan = trie.compile(0.4)
        assert plan.num_states == MotifIndex(trie, 0.4).num_motifs

    def test_low_threshold_admits_whole_trie(self, fig1_trie):
        index = MotifIndex(fig1_trie, 0.05)
        plan = index.compile()
        assert plan.num_states == fig1_trie.num_nodes
        assert_plan_matches_index(index, plan)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_workload_plan_matches_index(self, seed):
        workload = random_workload(seed)
        trie = TPSTry.from_workload(workload)
        for threshold in (0.2, 0.4, 0.8):
            index = MotifIndex(trie, threshold)
            assert_plan_matches_index(index, index.compile())

    @pytest.mark.parametrize("seed", range(6))
    def test_delta_id_agrees_with_packed_key(self, seed):
        """``delta_id`` (the matcher's memoised slow path) answers exactly
        like packing the scheme's addition key by hand."""
        workload = random_workload(seed)
        index = MotifIndex(TPSTry.from_workload(workload), 0.4)
        plan = index.compile()
        scheme = index.scheme
        bits = scheme.factor_bits
        labels = sorted(scheme.known_labels())
        for lu in labels:
            for lv in labels:
                for du in range(4):
                    for dv in range(4):
                        packed = pack_delta_key(
                            scheme.addition_key(lu, lv, du, dv), bits
                        )
                        expected = plan._delta_ids.get(packed, NO_STATE)
                        got = plan.delta_id(
                            plan.labels.id_of(lu), plan.labels.id_of(lv), du, dv
                        )
                        assert got == expected


class TestPlanStructure:
    def test_states_are_dense_and_node_id_ordered(self, fig5_workload):
        plan = TPSTry.from_workload(fig5_workload).compile(0.4)
        node_ids = [plan.node_of(s).node_id for s in range(plan.num_states)]
        assert node_ids == sorted(node_ids)

    def test_workload_labels_interned_eagerly_and_sorted(self, fig1_index):
        plan = fig1_index.compile()
        workload_labels = sorted(fig1_index.scheme.known_labels())
        assert list(plan.labels.labels())[: len(workload_labels)] == workload_labels

    def test_shared_label_interner_across_recompiles(self, fig1_index):
        plan1 = fig1_index.compile()
        plan2 = fig1_index.compile(labels=plan1.labels)
        assert plan2.labels is plan1.labels
        assert plan2.root_entry("a", "b") == plan1.root_entry("a", "b")

    def test_root_memo_caches_misses(self, fig1_index):
        plan = fig1_index.compile()
        assert plan.root_entry("x", "y")[0] == NO_STATE
        assert ("x", "y") in plan._root_memo  # the miss is memoised


GOLDEN_DIGESTS = {
    # sha256 over the sorted (repr(vertex), partition) assignment, produced
    # by the PRE-plan object-walking matcher (commit c3a4385) on these
    # exact seeded configurations.  The compiled pipeline must reproduce
    # them bit for bit: the plan is a representation change, not a
    # behavioural one.
    "synthetic-500v-3000e": "71a3ec72a577d25fc02c7a875115b2df82b7722b404cc48ed422a147b35b4980",
    "synthetic-tight-capacity": "a0da42f44b89860754d3f898287cf866044d48276f4c740123e13b24ea7da3f3",
}


def _digest(assignment) -> str:
    blob = json.dumps(sorted((repr(v), p) for v, p in assignment.items())).encode()
    return hashlib.sha256(blob).hexdigest()


class TestPrePostCompileBitExact:
    """Full-pipeline assignments are bit-identical pre/post compile."""

    @pytest.fixture
    def wl5(self, fig5_workload):
        return fig5_workload

    def test_synthetic_stream_golden(self, wl5):
        events = list(synthetic_stream(500, 3000, seed=9))
        state = PartitionState.for_graph(4, 500)
        LoomPartitioner(state, wl5, window_size=300, seed=0).ingest_all(events)
        assert _digest(state.assignment()) == GOLDEN_DIGESTS["synthetic-500v-3000e"]

    def test_tight_capacity_golden(self, wl5):
        """Zero-slack capacity exercises the mid-cluster spill path."""
        events = list(synthetic_stream(300, 2000, seed=13))
        state = PartitionState(4, math.ceil(300 / 4))
        LoomPartitioner(state, wl5, window_size=150, seed=0).ingest_all(events)
        assert _digest(state.assignment()) == GOLDEN_DIGESTS["synthetic-tight-capacity"]
