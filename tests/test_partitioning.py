"""Tests for partition state, the three baseline partitioners and metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.stream import EdgeEvent, stream_edges
from repro.partitioning.base import run_partitioner
from repro.partitioning.fennel import FennelPartitioner, fennel_alpha
from repro.partitioning.hash_partitioner import HashPartitioner, stable_hash
from repro.partitioning.ldg import LDGPartitioner, ldg_choose
from repro.partitioning.metrics import (
    communication_volume,
    cut_fraction,
    edge_cut,
    imbalance,
    partition_quality_summary,
    unassigned_vertices,
)
from repro.partitioning.state import PartitionState

from helpers import make_random_labelled_graph


class TestPartitionState:
    def test_for_graph_capacity(self):
        state = PartitionState.for_graph(4, 100, imbalance=1.1)
        assert state.capacity == 28  # ceil(1.1 * 100 / 4)

    def test_assign_and_lookup(self):
        state = PartitionState(2, 10)
        state.assign("v", 1)
        assert state.partition_of("v") == 1
        assert state.is_assigned("v")
        assert "v" in state
        assert state.sizes() == [0, 1]

    def test_reassign_same_partition_noop(self):
        state = PartitionState(2, 10)
        state.assign("v", 0)
        state.assign("v", 0)
        assert state.size(0) == 1

    def test_move_raises(self):
        state = PartitionState(2, 10)
        state.assign("v", 0)
        with pytest.raises(ValueError, match="permanent"):
            state.assign("v", 1)

    def test_partition_range_checked(self):
        state = PartitionState(2, 10)
        with pytest.raises(IndexError):
            state.assign("v", 2)

    def test_residual_capacity(self):
        state = PartitionState(1, 4)
        assert state.residual_capacity(0) == 1.0
        state.assign("a", 0)
        assert state.residual_capacity(0) == pytest.approx(0.75)

    def test_is_full_and_open(self):
        state = PartitionState(2, 1)
        state.assign("a", 0)
        assert state.is_full(0)
        assert state.open_partitions() == [1]

    def test_count_in_partition(self):
        state = PartitionState(2, 10)
        state.assign(1, 0)
        state.assign(2, 1)
        assert state.count_in_partition([1, 2, 3], 0) == 1
        assert state.count_in_partition([1, 2, 3], 1) == 1

    def test_smallest_partition_tie_break(self):
        state = PartitionState(3, 10)
        assert state.smallest_partition() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionState(0, 10)
        with pytest.raises(ValueError):
            PartitionState(2, 0)
        with pytest.raises(ValueError):
            PartitionState.for_graph(2, 0)


class TestHashPartitioner:
    def test_deterministic_across_instances(self):
        s1, s2 = PartitionState(4, 100), PartitionState(4, 100)
        e = EdgeEvent(1, "a", 2, "b")
        HashPartitioner(s1).ingest(e)
        HashPartitioner(s2).ingest(e)
        assert s1.assignment() == s2.assignment()

    def test_seed_changes_placement(self):
        placements = set()
        for seed in range(8):
            state = PartitionState(8, 100)
            HashPartitioner(state, seed=seed).ingest(EdgeEvent(1, "a", 2, "b"))
            placements.add(state.partition_of(1))
        assert len(placements) > 1

    def test_stable_hash_is_process_independent(self):
        assert stable_hash(123, 0) == stable_hash(123, 0)
        assert stable_hash(123, 0) != stable_hash(123, 1)

    def test_roughly_balanced(self, random_graph):
        state = PartitionState.for_graph(4, random_graph.num_vertices)
        HashPartitioner(state).ingest_all(stream_edges(random_graph, "bfs"))
        assert imbalance(state, random_graph.num_vertices) < 1.6


class TestLDG:
    def test_prefers_partition_with_neighbors(self):
        state = PartitionState(2, 100)
        state.assign("n1", 1)
        state.assign("n2", 1)
        assert ldg_choose(state, ["n1", "n2", "other"]) == 1

    def test_penalises_full_partitions(self):
        state = PartitionState(2, 4)
        for i in range(4):
            state.assign(("pad", i), 0)  # partition 0 full
        assert ldg_choose(state, []) == 1

    def test_cold_start_least_loaded(self):
        state = PartitionState(3, 100)
        state.assign("x", 0)
        assert ldg_choose(state, []) in (1, 2)

    def test_restrict_to(self):
        state = PartitionState(4, 100)
        state.assign("n", 0)
        assert ldg_choose(state, ["n"], restrict_to=[2, 3]) in (2, 3)

    def test_assigns_all_vertices(self, random_graph):
        state = PartitionState.for_graph(4, random_graph.num_vertices)
        LDGPartitioner(state).ingest_all(stream_edges(random_graph, "bfs"))
        assert unassigned_vertices(random_graph, state) == []

    def test_capacity_respected(self, random_graph):
        state = PartitionState.for_graph(4, random_graph.num_vertices)
        LDGPartitioner(state).ingest_all(stream_edges(random_graph, "random"))
        assert max(state.sizes()) <= state.capacity

    def test_beats_hash_on_edge_cut(self):
        g = make_random_labelled_graph(num_vertices=200, num_edges=420, seed=21)
        events = list(stream_edges(g, "bfs", seed=1))
        sh = PartitionState.for_graph(4, g.num_vertices)
        HashPartitioner(sh).ingest_all(events)
        sl = PartitionState.for_graph(4, g.num_vertices)
        LDGPartitioner(sl).ingest_all(events)
        assert edge_cut(g, sl) < edge_cut(g, sh)


class TestFennel:
    def test_alpha_formula(self):
        # alpha = sqrt(k) * m / n^1.5
        assert fennel_alpha(4, 100, 500) == pytest.approx(2 * 500 / 1000.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            fennel_alpha(4, 0, 10)

    def test_assigns_all_vertices(self, random_graph):
        state = PartitionState.for_graph(4, random_graph.num_vertices)
        FennelPartitioner(state, random_graph.num_vertices, random_graph.num_edges).ingest_all(
            stream_edges(random_graph, "dfs")
        )
        assert unassigned_vertices(random_graph, state) == []

    def test_capacity_respected(self, random_graph):
        state = PartitionState.for_graph(4, random_graph.num_vertices)
        FennelPartitioner(state, random_graph.num_vertices, random_graph.num_edges).ingest_all(
            stream_edges(random_graph, "random")
        )
        assert max(state.sizes()) <= state.capacity

    def test_prefers_neighbors_when_balanced(self):
        state = PartitionState(2, 100)
        f = FennelPartitioner(state, 10, 20)
        f.ingest(EdgeEvent(1, "a", 2, "b"))
        assert state.partition_of(1) == state.partition_of(2)

    def test_custom_alpha_override(self):
        state = PartitionState(2, 100)
        f = FennelPartitioner(state, 10, 20, alpha=3.5)
        assert f.alpha == 3.5


class TestMetrics:
    def build(self):
        from repro.graph.labelled_graph import LabelledGraph

        g = LabelledGraph.from_label_map(
            {1: "a", 2: "b", 3: "a", 4: "b"}, [(1, 2), (2, 3), (3, 4)]
        )
        state = PartitionState(2, 10)
        for v, p in [(1, 0), (2, 0), (3, 1), (4, 1)]:
            state.assign(v, p)
        return g, state

    def test_edge_cut(self):
        g, state = self.build()
        assert edge_cut(g, state) == 1  # only (2,3) crosses

    def test_cut_fraction(self):
        g, state = self.build()
        assert cut_fraction(g, state) == pytest.approx(1 / 3)

    def test_edge_cut_requires_full_assignment(self):
        g, _ = self.build()
        empty = PartitionState(2, 10)
        with pytest.raises(ValueError):
            edge_cut(g, empty)

    def test_imbalance_perfect(self):
        _, state = self.build()
        assert imbalance(state, 4) == pytest.approx(1.0)

    def test_communication_volume(self):
        g, state = self.build()
        # vertices 2 and 3 each see one remote partition.
        assert communication_volume(g, state) == 2

    def test_summary_keys(self):
        g, state = self.build()
        summary = partition_quality_summary(g, state)
        assert set(summary) == {
            "edge_cut",
            "cut_fraction",
            "imbalance",
            "communication_volume",
            "assigned_vertices",
        }


class TestRunPartitioner:
    def test_stats(self, random_graph):
        state = PartitionState.for_graph(2, random_graph.num_vertices)
        stats = run_partitioner(HashPartitioner(state), stream_edges(random_graph, "bfs"))
        assert stats.edges == random_graph.num_edges
        assert stats.seconds >= 0
        assert stats.ms_per_10k_edges >= 0
        assert stats.name == "hash"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), k=st.integers(2, 6))
def test_property_all_partitioners_assign_everything(seed, k):
    g = make_random_labelled_graph(num_vertices=50, num_edges=100, seed=seed)
    events = list(stream_edges(g, "random", seed=seed))
    for respects_capacity, build in (
        (False, lambda s: HashPartitioner(s)),  # Hash is capacity-oblivious
        (True, lambda s: LDGPartitioner(s)),
        (True, lambda s: FennelPartitioner(s, g.num_vertices, g.num_edges)),
    ):
        state = PartitionState.for_graph(k, g.num_vertices)
        build(state).ingest_all(events)
        assert state.num_assigned == g.num_vertices
        if respects_capacity:
            assert max(state.sizes()) <= state.capacity
