"""Unit tests for the labelled-graph substrate."""

import pytest

from repro.graph.labelled_graph import LabelledGraph, normalize_edge


def build_triangle() -> LabelledGraph:
    g = LabelledGraph("triangle")
    g.add_edge(1, 2, "a", "b")
    g.add_edge(2, 3, None, "c")
    g.add_edge(3, 1)
    return g


class TestConstruction:
    def test_add_vertex_and_label(self):
        g = LabelledGraph()
        g.add_vertex(7, "x")
        assert g.has_vertex(7)
        assert g.label(7) == "x"
        assert g.num_vertices == 1

    def test_re_add_vertex_same_label_is_noop(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        g.add_vertex(1, "a")
        assert g.num_vertices == 1

    def test_relabel_raises(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        with pytest.raises(ValueError, match="already has label"):
            g.add_vertex(1, "b")

    def test_add_edge_with_inline_labels(self):
        g = LabelledGraph()
        assert g.add_edge(1, 2, "a", "b") is True
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_add_duplicate_edge_returns_false(self):
        g = build_triangle()
        assert g.add_edge(1, 2) is False
        assert g.num_edges == 3

    def test_self_loop_rejected(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_edge_requires_labels(self):
        g = LabelledGraph()
        with pytest.raises(KeyError, match="no label"):
            g.add_edge(1, 2)

    def test_from_edges(self):
        g = LabelledGraph.from_edges([(1, "a", 2, "b"), (2, "b", 3, "c")])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_label_map(self):
        g = LabelledGraph.from_label_map({1: "a", 2: "b"}, [(1, 2)])
        assert g.has_edge(1, 2)


class TestRemoval:
    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 2

    def test_remove_missing_edge_raises(self):
        g = build_triangle()
        with pytest.raises(KeyError):
            g.remove_edge(1, 99)

    def test_remove_vertex_drops_incident_edges(self):
        g = build_triangle()
        g.remove_vertex(2)
        assert not g.has_vertex(2)
        assert g.num_edges == 1
        assert g.has_edge(3, 1)

    def test_remove_missing_vertex_raises(self):
        g = build_triangle()
        with pytest.raises(KeyError):
            g.remove_vertex(42)


class TestQueries:
    def test_degree_and_neighbors(self):
        g = build_triangle()
        assert g.degree(1) == 2
        assert g.neighbors(1) == {2, 3}

    def test_edges_iterates_each_once_normalized(self):
        g = build_triangle()
        edges = list(g.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3
        for u, v in edges:
            assert (u, v) == normalize_edge(u, v)

    def test_label_set(self):
        g = build_triangle()
        assert g.label_set() == {"a", "b", "c"}

    def test_vertices_with_label(self):
        g = build_triangle()
        assert g.vertices_with_label("a") == [1]

    def test_contains_and_len(self):
        g = build_triangle()
        assert 1 in g
        assert 42 not in g
        assert len(g) == 3

    def test_degree_histogram(self):
        g = build_triangle()
        assert g.degree_histogram() == {2: 3}


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_triangle()
        h = g.copy()
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not h.has_edge(1, 2)

    def test_subgraph_induced(self):
        g = build_triangle()
        s = g.subgraph([1, 2])
        assert s.num_vertices == 2
        assert s.has_edge(1, 2)
        assert s.num_edges == 1

    def test_edge_subgraph_not_induced(self):
        g = build_triangle()
        s = g.edge_subgraph([normalize_edge(1, 2)])
        assert s.num_vertices == 2
        assert s.num_edges == 1
        assert s.label(1) == "a"

    def test_connected_components(self):
        g = LabelledGraph.from_label_map(
            {1: "a", 2: "b", 3: "a", 4: "b"}, [(1, 2), (3, 4)]
        )
        comps = sorted(g.connected_components(), key=lambda c: min(c))
        assert comps == [{1, 2}, {3, 4}]
        assert not g.is_connected()

    def test_empty_graph_is_connected(self):
        assert LabelledGraph().is_connected()

    def test_triangle_is_connected(self):
        assert build_triangle().is_connected()


class TestNormalizeEdge:
    def test_order_independent(self):
        assert normalize_edge(2, 1) == normalize_edge(1, 2)

    def test_idempotent(self):
        e = normalize_edge(5, 3)
        assert normalize_edge(*e) == e


class TestNetworkxInterop:
    def test_round_trip_preserves_structure(self):
        g = build_triangle()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 3
        assert nxg.nodes[1]["label"] == "a"
