"""The serving layer's parts: stores, routers, engine, cache, traffic."""

import pytest

from repro.datasets.figure1 import figure1_graph, figure1_workload
from repro.graph.stream import EdgeEvent, stream_edges
from repro.partitioning import registry
from repro.partitioning.state import PartitionState
from repro.serving import (
    ResultCache,
    ServingEngine,
    ServingStores,
    TrafficDriver,
    available_routers,
    create_router,
    register_router,
)
from repro.serving.router import BUILTIN_ROUTERS, Router, unregister_router
from repro.serving.traffic import percentile


def _partitioned_figure1(system="ldg", k=2, seed=0):
    graph = figure1_graph()
    workload = figure1_workload()
    state = PartitionState.for_graph(k, graph.num_vertices)
    partitioner = registry.create(
        system, state, graph=graph, workload=workload, window_size=8, seed=seed
    )
    partitioner.ingest_all(stream_edges(graph, "bfs", seed=seed))
    return graph, workload, state


class TestServingStores:
    def test_materialises_every_vertex_and_edge(self):
        graph, _workload, state = _partitioned_figure1()
        stores = ServingStores.from_state(graph, state)
        assert stores.num_vertices == graph.num_vertices
        assert stores.num_edges == graph.num_edges
        assert stores.num_pending == 0
        assert sum(s.num_members for s in stores.stores) == graph.num_vertices

    def test_border_index_matches_cut_edges(self):
        graph, _workload, state = _partitioned_figure1()
        stores = ServingStores.from_state(graph, state)
        cut = sum(
            1
            for u, v in graph.edges()
            if state.partition_of(u) != state.partition_of(v)
        )
        assert stores.num_border_edges == cut
        # Each cut edge appears in both endpoints' border lists.
        listed = sum(
            len(store.border_neighbors(vid))
            for store in stores.stores
            for vid in list(store._adj)
        )
        assert listed == 2 * cut

    def test_label_index_feeds_candidates(self):
        graph, _workload, state = _partitioned_figure1()
        stores = ServingStores.from_state(graph, state)
        lid = stores.labels.id_of("a")
        expected = sorted(
            state.interner.id_of(v) for v in graph.vertices_with_label("a")
        )
        assert stores.all_candidates(lid) == expected
        assert sum(stores.candidate_counts(lid)) == len(expected)

    def test_unassigned_endpoint_parks_pending(self):
        state = PartitionState(2, capacity=4)
        stores = ServingStores(state)
        state.assign("x", 0)
        assert stores.ingest_edge(EdgeEvent("x", "a", "y", "b")) is None
        assert stores.num_pending == 1
        state.assign("y", 1)
        visible = stores.flush_pending()
        assert len(visible) == 1
        assert stores.num_pending == 0
        assert stores.num_border_edges == 1

    def test_duplicate_edges_are_noops(self):
        state = PartitionState(2, capacity=4)
        state.assign("x", 0)
        state.assign("y", 0)
        stores = ServingStores(state)
        assert stores.ingest_edge(EdgeEvent("x", "a", "y", "b")) is not None
        assert stores.ingest_edge(EdgeEvent("y", "b", "x", "a")) is None
        assert stores.num_edges == 1


class TestRouterRegistry:
    def test_builtins_available(self):
        names = available_routers()
        for name in BUILTIN_ROUTERS:
            assert name in names

    def test_unknown_router_raises_with_names(self):
        with pytest.raises(ValueError) as err:
            create_router("no-such-router")
        message = str(err.value)
        assert "no-such-router" in message
        for name in BUILTIN_ROUTERS:
            assert name in message

    def test_register_and_unregister(self):
        class _First(Router):
            name = "first-only"

            def route(self, stores, root_label_id):
                counts = stores.candidate_counts(root_label_id)
                return [p for p, c in enumerate(counts) if c > 0][:1]

        register_router("first-only", _First)
        try:
            assert "first-only" in available_routers()
            assert isinstance(create_router("first-only"), _First)
        finally:
            unregister_router("first-only")
        assert "first-only" not in available_routers()

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            register_router("", lambda: None)


class TestRouters:
    def test_broadcast_contacts_every_partition(self):
        graph, workload, state = _partitioned_figure1(k=2)
        engine = ServingEngine(graph, state, workload, router="broadcast")
        report = engine.execute_query("q2")
        assert report.partitions_contacted == state.k

    def test_candidate_count_skips_empty_partitions(self):
        graph, workload, state = _partitioned_figure1(k=4)
        engine = ServingEngine(graph, state, workload, router="candidate-count")
        lid = engine.root_label_id("q2")
        counts = engine.stores.candidate_counts(lid)
        routed = engine.router.route(engine.stores, lid)
        assert routed == sorted(
            (p for p, c in enumerate(counts) if c > 0),
            key=lambda p: (-counts[p], p),
        )
        assert all(counts[p] > 0 for p in routed)

    def test_label_selectivity_orders_by_density(self):
        graph, workload, state = _partitioned_figure1(k=2)
        engine = ServingEngine(graph, state, workload, router="label-selectivity")
        lid = engine.root_label_id("q2")
        routed = engine.router.route(engine.stores, lid)
        densities = [
            store.candidate_count(lid) / max(1, store.num_members)
            for store in engine.stores.stores
        ]
        assert routed == sorted(
            (p for p in range(state.k) if densities[p] > 0),
            key=lambda p: (-densities[p], p),
        )

    def test_all_routers_agree_on_results(self):
        graph, workload, state = _partitioned_figure1()
        baseline = None
        for name in BUILTIN_ROUTERS:
            engine = ServingEngine(graph, state, workload, router=name)
            totals = {
                q.name: (q.embeddings, q.hops)
                for q in engine.execute_workload().queries
            }
            if baseline is None:
                baseline = totals
            else:
                assert totals == baseline


class TestServingEngine:
    def test_unknown_query_raises(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        with pytest.raises(KeyError):
            engine.execute_query("nope")

    def test_unknown_root_vertex_raises(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        with pytest.raises(KeyError):
            engine.serve_vertex("q2", "never-seen")

    def test_wrong_label_root_serves_empty(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        # q2 = a-b-c roots at its rarest-label slot; vertex 4 is labelled d,
        # which can never be a q2 root.
        result = engine.serve_vertex("q2", 4)
        assert result.num_embeddings == 0 and result.hops == 0

    def test_partitioner_must_share_state(self):
        graph, workload, state = _partitioned_figure1()
        other = PartitionState.for_graph(2, graph.num_vertices)
        partitioner = registry.create("ldg", other, graph=graph)
        with pytest.raises(ValueError):
            ServingEngine(graph, state, workload, partitioner=partitioner)

    def test_embeddings_are_injective_and_label_correct(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        lid = engine.root_label_id("q1")
        for root in engine.stores.all_candidates(lid):
            for embedding in engine.serve_root("q1", root).embeddings:
                assert len(set(embedding)) == len(embedding)
                assert embedding[0] == root


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put(("q", 1), "one")
        cache.put(("q", 2), "two")
        assert cache.get(("q", 1)) == "one"  # touch 1 → 2 is now LRU
        cache.put(("q", 3), "three")
        assert ("q", 2) not in cache
        assert cache.get(("q", 1)) == "one"

    def test_stats_track_hits_misses_invalidations(self):
        cache = ResultCache()
        assert cache.get(("q", 1)) is None
        cache.put(("q", 1), "x")
        assert cache.get(("q", 1)) == "x"
        assert cache.invalidate_roots("q", [1, 2]) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["invalidations"] == 1

    def test_drop_query_only_drops_that_query(self):
        cache = ResultCache()
        cache.put(("q1", 1), "a")
        cache.put(("q2", 1), "b")
        assert cache.drop_query("q1") == 1
        assert ("q2", 1) in cache

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_engine_keeps_caller_supplied_empty_cache(self):
        """An empty ResultCache is falsy (``__len__``) — the engine must
        still adopt it rather than silently serving uncached."""
        graph, workload, state = _partitioned_figure1()
        cache = ResultCache(max_entries=64)
        engine = ServingEngine(graph, state, workload, cache=cache)
        assert engine.cache is cache
        engine.execute_query("q2")
        assert len(cache) > 0


class TestTrafficDriver:
    def test_sampling_is_deterministic(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        a = TrafficDriver(engine, seed=7, zipf_s=1.0).sample(50)
        b = TrafficDriver(engine, seed=7, zipf_s=1.0).sample(50)
        assert a == b
        c = TrafficDriver(engine, seed=8, zipf_s=1.0).sample(50)
        assert a != c

    def test_sample_respects_root_labels(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        for name, root in TrafficDriver(engine, seed=0).sample(100):
            assert engine.stores.label_id_of(root) == engine.root_label_id(name)

    def test_cache_hits_charge_no_hops(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload, cache=True)
        driver = TrafficDriver(engine, seed=0, zipf_s=2.0, hop_cost_us=1000.0)
        requests = driver.sample(200)
        report = driver.run(0, requests=requests, system="ldg")
        assert report.requests == 200
        # Every distinct (query, root) misses once; repeats hit.
        distinct = len(set(requests))
        assert report.cache_misses == distinct
        assert report.cache_hits == 200 - distinct
        assert report.charged_hops <= report.hops

    def test_report_shape(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload, cache=True)
        report = TrafficDriver(engine, seed=0).run(25, system="ldg")
        payload = report.as_dict()
        for key in (
            "queries_per_sec",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "hops_per_query",
            "cache_hit_rate",
        ):
            assert key in payload
        assert payload["system"] == "ldg"
        assert report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_rejects_bad_parameters(self):
        graph, workload, state = _partitioned_figure1()
        engine = ServingEngine(graph, state, workload)
        with pytest.raises(ValueError):
            TrafficDriver(engine, zipf_s=-1.0)
        with pytest.raises(ValueError):
            TrafficDriver(engine, hop_cost_us=-1.0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.95) == 4.0
        assert percentile(values, 1.0) == 4.0
        assert percentile([], 0.5) == 0.0
