"""Cross-module property tests for the reproduction's key invariants.

The strongest one checks Alg. 2's completeness: every motif-matching
sub-graph present in the window is discovered by the incremental matcher,
verified against brute-force enumeration of all connected edge sub-graphs.
"""

import random
from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.core.loom import LoomPartitioner
from repro.core.matching import StreamMatcher
from repro.core.motifs import MotifIndex
from repro.core.signature import SignatureScheme
from repro.core.tpstry import TPSTry
from repro.graph.labelled_graph import LabelledGraph, normalize_edge
from repro.graph.stream import EdgeEvent, stream_edges
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload

from helpers import make_random_labelled_graph


def _fig5_workload() -> Workload:
    return Workload(
        [
            (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
        ],
        name="fig5",
    )


def _fig1_workload() -> Workload:
    from repro.datasets.figure1 import figure1_workload

    return figure1_workload()


def brute_force_motif_subgraphs(graph: LabelledGraph, index: MotifIndex):
    """All connected edge-subsets of ``graph`` whose signature is a motif."""
    edges = sorted(graph.edges(), key=repr)
    scheme = index.scheme
    found = set()
    for size in range(1, index.max_motif_edges + 1):
        for combo in combinations(edges, size):
            sub = graph.edge_subgraph(combo)
            if not sub.is_connected():
                continue
            node = index.trie.node_for_signature(scheme.graph_signature(sub))
            if node is not None and index.is_motif(node):
                found.add((frozenset(combo), node.node_id))
    return found


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 400), n_edges=st.integers(3, 10))
def test_property_matcher_is_complete(seed, n_edges):
    """The incremental matcher finds exactly the motif matches that exist
    in the window (no caps, window larger than the stream)."""
    rng = random.Random(seed)
    labels = ["a", "b", "c"]
    g = LabelledGraph()
    for v in range(n_edges + 1):
        g.add_vertex(v, rng.choice(labels))
    for v in range(1, n_edges + 1):
        g.add_edge(rng.randrange(v), v)

    trie = TPSTry.from_workload(_fig5_workload())
    index = MotifIndex(trie, 0.4)
    matcher = StreamMatcher(index, window_size=1000, max_matches_per_vertex=10_000)
    for u, v in sorted(g.edges(), key=repr):
        matcher.offer(EdgeEvent(u, g.label(u), v, g.label(v)))

    window_graph = matcher.window.to_labelled_graph()
    expected = brute_force_motif_subgraphs(window_graph, index)
    actual = {
        (
            frozenset(normalize_edge(u, v) for u, v in matcher.resolve_edges(m)),
            matcher.resolve_node(m).node_id,
        )
        for m in matcher.matchlist.all_matches()
    }
    assert actual == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300), k=st.integers(2, 5), window=st.integers(2, 40))
def test_property_loom_total_and_balanced(seed, k, window):
    """Loom assigns every streamed vertex exactly once, within capacity,
    for any window size, k and stream order."""
    g = make_random_labelled_graph(num_vertices=45, num_edges=90, seed=seed)
    order = ["bfs", "dfs", "random"][seed % 3]
    state = PartitionState.for_graph(k, g.num_vertices)
    loom = LoomPartitioner(state, _fig1_workload(), window_size=window, seed=seed)
    loom.ingest_all(stream_edges(g, order, seed=seed))
    assert state.num_assigned == g.num_vertices
    assert loom.window_occupancy == 0
    assert max(state.sizes()) <= state.capacity
    sizes = state.sizes()
    assert sum(sizes) == g.num_vertices


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 50), min_size=2, max_size=8),
    alpha=st.floats(0.1, 1.0),
)
def test_property_ration_bounds(sizes, alpha):
    """l(Si) always lies in [0, 1], is 1 for the smallest partition and 0
    for full partitions."""
    from repro.core.allocation import EqualOpportunism

    capacity = max(max(sizes) + 1, 10)
    state = PartitionState(len(sizes), capacity)
    for i, size in enumerate(sizes):
        for j in range(size):
            state.assign((i, j), i)
    eo = EqualOpportunism(state, alpha=alpha)
    rations = [eo.ration(i) for i in range(len(sizes))]
    assert all(0.0 <= r <= 1.0 for r in rations)
    smallest = min(range(len(sizes)), key=lambda i: sizes[i])
    assert rations[smallest] == 1.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_trie_independent_of_query_order(seed):
    """Adding workload queries in any order yields the same node set and
    supports (the DAG merge is order-insensitive)."""
    patterns = [
        (path_pattern(["a", "b", "a"], name="p1"), 0.5),
        (path_pattern(["a", "b", "c"], name="p2"), 0.3),
        (path_pattern(["b", "c", "b"], name="p3"), 0.2),
    ]
    shuffled = patterns[:]
    random.Random(seed).shuffle(shuffled)

    scheme_a = SignatureScheme(["a", "b", "c"], seed=7)
    scheme_b = SignatureScheme(["a", "b", "c"], seed=7)
    trie_a, trie_b = TPSTry(scheme_a), TPSTry(scheme_b)
    for pattern, freq in patterns:
        trie_a.add_query(pattern, freq)
    for pattern, freq in shuffled:
        trie_b.add_query(pattern, freq)

    support_a = {n.signature.key: round(n.support, 9) for n in trie_a.nodes()}
    support_b = {n.signature.key: round(n.support, 9) for n in trie_b.nodes()}
    assert support_a == support_b


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_executor_invariant_under_stream_order(seed):
    """ipt depends only on the final assignment, never on how the
    partitioner saw the stream — executing twice must agree."""
    from repro.query.executor import WorkloadExecutor

    g = make_random_labelled_graph(num_vertices=40, num_edges=80, seed=seed)
    wl = Workload([(path_pattern(["a", "b", "c"]), 1.0)])
    state = PartitionState.for_graph(3, g.num_vertices)
    rng = random.Random(seed)
    for v in g.vertices():
        state.assign(v, rng.randrange(3))
    a = WorkloadExecutor(g, wl).execute(state).weighted_ipt
    b = WorkloadExecutor(g, wl).execute(state).weighted_ipt
    assert a == b
