"""Tests for the schema generator, the four dataset stand-ins and Fig. 1."""

import pytest

from repro.datasets import dblp, lubm, musicbrainz, provgen
from repro.datasets.base import RelationRule, Schema, generate_graph, realized_label_counts
from repro.datasets.figure1 import figure1_graph, figure1_workload
from repro.datasets.registry import (
    IPT_DATASETS,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.query.isomorphism import count_embeddings


class TestSchemaValidation:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            RelationRule("a", "b", -1.0)
        with pytest.raises(ValueError):
            RelationRule("a", "b", 1.0, attachment="magnetic")
        with pytest.raises(ValueError):
            RelationRule("a", "b", 1.0, locality=1.5)
        with pytest.raises(ValueError):
            RelationRule("a", "b", 1.0, max_target_degree=0)

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            Schema("s", {})
        with pytest.raises(ValueError):
            Schema("s", {"a": -1.0})
        with pytest.raises(ValueError):
            Schema("s", {"a": 1.0}, rules=(RelationRule("a", "zzz", 1.0),))
        with pytest.raises(ValueError):
            Schema("s", {"a": 1.0}, communities=0)


class TestGenerateGraph:
    SCHEMA = Schema(
        "toy",
        {"a": 2.0, "b": 1.0},
        rules=(RelationRule("a", "b", 1.5, locality=0.5),),
        communities=4,
    )

    def test_deterministic(self):
        g1 = generate_graph(self.SCHEMA, 120, seed=5)
        g2 = generate_graph(self.SCHEMA, 120, seed=5)
        assert set(g1.edges()) == set(g2.edges())
        assert g1.labels() == g2.labels()

    def test_seed_changes_graph(self):
        g1 = generate_graph(self.SCHEMA, 120, seed=1)
        g2 = generate_graph(self.SCHEMA, 120, seed=2)
        assert set(g1.edges()) != set(g2.edges())

    def test_label_mix_roughly_matches_weights(self):
        g = generate_graph(self.SCHEMA, 300, seed=0)
        counts = realized_label_counts(g)
        assert counts["a"] > counts["b"]

    def test_no_isolated_vertices(self):
        g = generate_graph(self.SCHEMA, 200, seed=3)
        assert all(g.degree(v) > 0 for v in g.vertices())

    def test_simple_graph(self):
        g = generate_graph(self.SCHEMA, 200, seed=3)
        for u, v in g.edges():
            assert u != v

    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            generate_graph(self.SCHEMA, 1, seed=0)

    def test_hub_cap_respected(self):
        capped = Schema(
            "capped",
            {"a": 10.0, "b": 1.0},
            rules=(
                RelationRule(
                    "a", "b", 1.0, attachment="preferential", max_target_degree=5
                ),
            ),
        )
        g = generate_graph(capped, 300, seed=0)
        for v in g.vertices_with_label("b"):
            assert g.degree(v) <= 5


@pytest.mark.parametrize(
    "module,expected_labels",
    [
        (dblp, 8),
        (provgen, 3),
        (musicbrainz, 12),
        (lubm, 15),
    ],
)
class TestDatasetHeterogeneity:
    def test_label_alphabet_matches_table1(self, module, expected_labels):
        assert len(module.LABELS) == expected_labels
        assert len(module.schema().label_weights) == expected_labels

    def test_generated_graph_realises_alphabet(self, module, expected_labels):
        g = module.build_graph(800, seed=0)
        # Tiny graphs may drop a rare label's isolated vertices; the
        # alphabet must still be essentially complete.
        assert len(g.label_set()) >= expected_labels - 1

    def test_workload_labels_subset_of_schema(self, module, expected_labels):
        wl = module.build_workload()
        assert wl.label_set() <= set(module.LABELS)


class TestWorkloadMotifStructure:
    """Each canonical workload must yield multi-edge motifs at T = 40% —
    otherwise Loom degenerates to delayed single-edge placement."""

    @pytest.mark.parametrize("module", [dblp, provgen, musicbrainz, lubm])
    def test_multi_edge_motif_exists(self, module):
        from repro.core.motifs import MotifIndex
        from repro.core.tpstry import TPSTry

        trie = TPSTry.from_workload(module.build_workload())
        index = MotifIndex(trie, 0.4)
        assert index.max_motif_edges >= 2
        assert len(index.single_edge_motifs()) >= 1
        # And some query weight must stay below the threshold: the
        # workload-skew Loom exploits requires non-motif edge types too.
        assert index.num_motifs < trie.num_nodes

    @pytest.mark.parametrize("module", [dblp, provgen, musicbrainz, lubm])
    def test_workload_patterns_occur_in_generated_graph(self, module):
        g = module.build_graph(1200, seed=0)
        wl = module.build_workload()
        matched = sum(
            1 for e in wl if count_embeddings(g, e.pattern, limit=1) > 0
        )
        assert matched >= len(wl) - 1  # nearly every query has matches


class TestRegistry:
    def test_available(self):
        assert available_datasets() == [
            "dblp",
            "lubm-100",
            "lubm-4000",
            "musicbrainz",
            "provgen",
        ]

    def test_ipt_datasets_excludes_lubm_4000(self):
        assert "lubm-4000" not in IPT_DATASETS

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_spec("neo4j")

    def test_load_dataset(self):
        ds = load_dataset("provgen", 400, seed=1)
        assert ds.name == "provgen"
        assert ds.heterogeneity == 3
        assert ds.graph.num_vertices <= 400
        row = ds.stats_row()
        assert row["paper_vertices"] == 500_000
        assert row["labels"] == 3

    def test_default_sizes_used(self):
        spec = dataset_spec("dblp")
        assert spec.default_vertices == dblp.DEFAULT_VERTICES


class TestFigure1Example:
    def test_graph_shape(self):
        g = figure1_graph()
        assert g.num_vertices == 8
        assert g.num_edges == 8
        assert g.label_set() == {"a", "b", "c", "d"}

    def test_workload_frequencies(self):
        wl = figure1_workload()
        assert wl.frequencies() == pytest.approx(
            {"q1": 0.30, "q2": 0.60, "q3": 0.10}
        )
