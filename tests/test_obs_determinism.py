"""Telemetry is out-of-band: instrumented runs are bit-identical.

The obs layer's standing promise (ISSUE 10, ARCHITECTURE.md) is that
enabling metrics and tracing changes *nothing* about a run's outputs —
placements, served answers, quality numbers — and that the trace itself
is deterministic modulo its ``ts`` timestamps.  Both halves are enforced
here the same way ``tests/test_determinism.py`` pins the core pipeline:
fresh subprocesses under *different* ``PYTHONHASHSEED`` values (so
str/tuple hashing and heap layout both vary), compared byte-for-byte.

Three comparisons per shard count (1, 2, 4):

* assignment bytes: obs-off run == obs-on run (out-of-band),
* assignment bytes: obs-on run A == obs-on run B under different hash
  seeds (still deterministic with telemetry enabled),
* masked trace sequences (``ts`` dropped): run A == run B — every event
  id, kind and field reproduces.

Runs go through ``python -m repro.partition_cli`` — the same entry point
CI's live smoke traces — with ``--serve`` so the trace holds the full
ingest + serving lifecycle.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def files(tmp_path_factory):
    from repro.datasets.registry import load_dataset
    from repro.graph.io import write_graph
    from repro.query.io import write_workload

    tmp = tmp_path_factory.mktemp("obs-det")
    dataset = load_dataset("provgen", 300, seed=5)
    graph_path = tmp / "graph.txt"
    workload_path = tmp / "workload.txt"
    write_graph(dataset.graph, graph_path)
    write_workload(dataset.workload, workload_path)
    return graph_path, workload_path, tmp


def _run_cli(files, tag, hash_seed, shards, trace=True):
    """One pristine-interpreter CLI run → (assignment bytes, trace path)."""
    graph_path, workload_path, tmp = files
    out = tmp / f"assignment-{tag}.tsv"
    trace_out = tmp / f"trace-{tag}.jsonl"
    argv = [
        sys.executable,
        "-m",
        "repro.partition_cli",
        str(graph_path),
        "--workload",
        str(workload_path),
        "--system",
        "loom",
        "--k",
        "4",
        "--window",
        "80",
        "--shards",
        str(shards),
        "--serve",
        "60",
        "--out",
        str(out),
    ]
    if trace:
        argv += ["--trace-out", str(trace_out)]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["PYTHONHASHSEED"] = str(hash_seed)
    proc = subprocess.run(argv, capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return out.read_bytes(), (trace_out if trace else None)


def _masked_trace(path):
    from repro.obs.trace import load_jsonl, masked

    return masked(load_jsonl(str(path)))


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_traced_double_run_bit_identical(files, shards):
    """Different hash seeds, tracing on: same assignment, same masked trace."""
    first_bytes, first_trace = _run_cli(files, f"s{shards}-a", 101, shards)
    second_bytes, second_trace = _run_cli(files, f"s{shards}-b", 9091, shards)
    assert first_bytes == second_bytes
    first_events = _masked_trace(first_trace)
    second_events = _masked_trace(second_trace)
    assert first_events, "trace should not be empty"
    assert first_events == second_events


def test_obs_on_vs_off_identical_assignment(files):
    """The out-of-band half: telemetry must not perturb a single placement."""
    plain_bytes, _ = _run_cli(files, "off", 7, 1, trace=False)
    traced_bytes, trace_path = _run_cli(files, "on", 7, 1, trace=True)
    assert plain_bytes == traced_bytes
    events = _masked_trace(trace_path)
    kinds = {rec["kind"] for rec in events}
    assert "ingest.batch" in kinds
    assert "serve.done" in kinds


def test_env_hook_enables_in_subprocess(files):
    """``REPRO_OBS=1`` flips the registry on at import — the hook CI's
    smoke and these double-runs rely on."""
    probe = (
        "from repro import obs; import sys; "
        "sys.exit(0 if obs.enabled() else 1)"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_OBS"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, env=env, timeout=60
    )
    assert proc.returncode == 0
