"""The sharded runtime: routing, batching, merge, and end-to-end parity."""

import pytest
from helpers import make_random_labelled_graph

from repro.graph.interning import VertexInterner
from repro.graph.stream import batched, stream_edges, synthetic_stream
from repro.partitioning import registry
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload
from repro.runtime import (
    GraphTotals,
    ShardRouter,
    available_merge_rules,
    merge_shard_results,
    mix64,
    register_merge_rule,
    run_sharded,
    shard_of_edge,
)
from repro.runtime.merge import _MERGE_RULES
from repro.runtime.messages import ShardResult


def tiny_workload():
    return Workload(
        [
            (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
        ],
        name="runtime-tests",
    )


def _shard_result(shard_id, assignment):
    return ShardResult(
        shard_id=shard_id,
        assignment=assignment,
        edges=len(assignment),
        batches=1,
        ingest_seconds=0.0,
        worker_seconds=0.0,
    )


class TestSharding:
    def test_endpoint_symmetric(self):
        assert shard_of_edge(3, 7, 4) == shard_of_edge(7, 3, 4)

    def test_deterministic_pure_function(self):
        assert [shard_of_edge(i, i + 1, 8) for i in range(64)] == [
            shard_of_edge(i, i + 1, 8) for i in range(64)
        ]

    def test_mix64_breaks_sequential_ids(self):
        """Consecutive interner ids must not map to consecutive shards —
        that is exactly what raw ``hash(int)`` would do."""
        assert mix64(1) != 1  # not the identity on small ints, unlike hash()
        assert all(0 <= mix64(x) < (1 << 64) for x in (1, 2**40, -1))
        shards = [shard_of_edge(i, i + 1, 4) for i in range(100)]
        assert len(set(shards)) == 4
        assert shards != [i % 4 for i in range(100)]

    def test_every_shard_receives_edges(self):
        router = ShardRouter(4)
        counts = router.shard_counts(synthetic_stream(200, 1000, seed=1))
        assert len(counts) == 4
        assert all(c > 0 for c in counts)
        assert sum(counts) == 1000

    def test_router_interns_in_stream_order(self):
        router = ShardRouter(2)
        _, uid, vid = router.route("x", "y")
        assert (uid, vid) == (0, 1)
        _, uid2, _ = router.route("x", "z")
        assert uid2 == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestBatched:
    def test_preserves_order_and_content(self):
        events = list(synthetic_stream(20, 40, seed=0))
        rebatched = [ev for batch in batched(events, 7) for ev in batch]
        assert rebatched == events

    def test_batch_sizes(self):
        events = list(synthetic_stream(20, 40, seed=0))
        sizes = [len(b) for b in batched(events, 16)]
        assert sizes == [16, 16, 8]

    def test_empty_stream(self):
        assert list(batched([], 4)) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched([], 0))


class TestMerge:
    def test_lowest_shard_wins(self):
        interner = VertexInterner()
        for v in ("a", "b", "c"):
            interner.intern(v)
        results = [
            _shard_result(1, [("a", 3), ("b", 1)]),
            _shard_result(0, [("a", 2)]),
        ]
        outcome = merge_shard_results(
            results, k=4, expected_vertices=3, interner=interner
        )
        assert outcome.state.partition_of("a") == 2  # shard 0 beats shard 1
        assert outcome.state.partition_of("b") == 1
        assert outcome.state.partition_of("c") is None
        assert outcome.shared_vertices == 1
        assert outcome.conflicts == 1

    def test_majority_rule(self):
        interner = VertexInterner()
        interner.intern("a")
        results = [
            _shard_result(0, [("a", 2)]),
            _shard_result(1, [("a", 3)]),
            _shard_result(2, [("a", 3)]),
        ]
        outcome = merge_shard_results(
            results, k=4, expected_vertices=1, interner=interner, rule="majority"
        )
        assert outcome.state.partition_of("a") == 3
        assert outcome.conflicts == 1

    def test_agreeing_claims_are_not_conflicts(self):
        interner = VertexInterner()
        interner.intern("a")
        results = [_shard_result(0, [("a", 1)]), _shard_result(1, [("a", 1)])]
        outcome = merge_shard_results(
            results, k=2, expected_vertices=1, interner=interner
        )
        assert outcome.shared_vertices == 1
        assert outcome.conflicts == 0

    def test_pluggable_rule(self):
        name = "test-highest-partition"
        register_merge_rule(name, lambda vertex, claims: max(p for _, p in claims))
        try:
            assert name in available_merge_rules()
            interner = VertexInterner()
            interner.intern("a")
            results = [_shard_result(0, [("a", 0)]), _shard_result(1, [("a", 3)])]
            outcome = merge_shard_results(
                results, k=4, expected_vertices=1, interner=interner, rule=name
            )
            assert outcome.state.partition_of("a") == 3
        finally:
            _MERGE_RULES.pop(name, None)

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            merge_shard_results(
                [], k=2, expected_vertices=1, interner=VertexInterner(), rule="nope"
            )


class TestStateExport:
    def test_export_roundtrip(self):
        state = PartitionState(3, 10)
        state.assign("x", 0)
        state.assign("y", 2)
        assert state.export_ids() == [(0, 0), (1, 2)]
        assert state.export_assignment() == [("x", 0), ("y", 2)]
        rebuilt = PartitionState(3, 10)
        rebuilt.bulk_assign(state.export_assignment())
        assert rebuilt.assignment() == state.assignment()

    def test_bulk_assign_respects_permanence(self):
        state = PartitionState(3, 10)
        state.assign("x", 0)
        state.bulk_assign([("x", 0)])  # re-assertion is a no-op
        with pytest.raises(ValueError):
            state.bulk_assign([("x", 1)])


class TestLoomBatchEntryPoint:
    def test_ingest_batch_matches_per_event_ingest(self):
        """The batch-offer entry point is an amortisation, not a semantic
        change: same assignments, same matcher counters, same stats."""
        graph = make_random_labelled_graph(60, 140, seed=5)
        events = list(stream_edges(graph, "bfs", seed=3))
        workload = tiny_workload()
        from repro.core.loom import LoomPartitioner

        state_a = PartitionState.for_graph(4, graph.num_vertices)
        loom_a = LoomPartitioner(state_a, workload, window_size=40, seed=0)
        loom_a.ingest_all(events)

        state_b = PartitionState.for_graph(4, graph.num_vertices)
        loom_b = LoomPartitioner(state_b, workload, window_size=40, seed=0)
        for batch in batched(events, 13):
            loom_b.ingest_batch(batch)
        loom_b.finalize()

        assert state_a.assignment() == state_b.assignment()
        # batches_offered counts gate chunks, so it depends on the batch
        # layout; every per-edge counter must agree across layouts.
        stats_a, stats_b = loom_a.matcher.stats, loom_b.matcher.stats
        assert stats_a.core_counters() == stats_b.core_counters()
        assert stats_a.vector_bypassed == stats_b.vector_bypassed
        assert stats_a.scalar_fallbacks == stats_b.scalar_fallbacks
        assert loom_a.stats == loom_b.stats
        assert loom_a.edges_ingested == loom_b.edges_ingested == len(events)


class TestRunSharded:
    @pytest.mark.parametrize("system", ["ldg", "fennel", "hash"])
    def test_one_shard_matches_single_process(self, system):
        """One worker sees the whole stream in order — the sharded result
        must be assignment-identical to the direct in-process run."""
        events = list(synthetic_stream(300, 1200, seed=2))
        state = PartitionState.for_graph(4, 300)
        partitioner = registry.create(
            system, state, graph=GraphTotals(300, 1200), seed=0
        )
        partitioner.ingest_all(events)

        result = run_sharded(
            events,
            system=system,
            num_shards=1,
            k=4,
            expected_vertices=300,
            expected_edges=1200,
            seed=0,
        )
        assert result.state.assignment() == state.assignment()

    def test_one_shard_loom_matches_single_process(self):
        from repro.core.loom import LoomPartitioner

        graph = make_random_labelled_graph(60, 140, seed=5)
        events = list(stream_edges(graph, "bfs", seed=3))
        workload = tiny_workload()
        state = PartitionState.for_graph(4, graph.num_vertices)
        loom = LoomPartitioner(state, workload, window_size=40, seed=0)
        loom.ingest_all(events)

        result = run_sharded(
            events,
            system="loom",
            num_shards=1,
            k=4,
            expected_vertices=graph.num_vertices,
            expected_edges=graph.num_edges,
            workload=workload,
            window_size=40,
            seed=0,
        )
        assert result.state.assignment() == state.assignment()
        assert result.shard_results[0].matcher_stats == loom.matcher.stats.as_dict()

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_multi_shard_places_every_vertex(self, num_shards):
        events = list(synthetic_stream(300, 1200, seed=2))
        result = run_sharded(
            events,
            system="ldg",
            num_shards=num_shards,
            k=4,
            expected_vertices=300,
            expected_edges=1200,
            batch_size=64,
        )
        assert result.state.num_assigned == 300
        assert result.edges == 1200
        assert sum(result.shard_edge_counts()) == 1200
        assert len(result.shard_results) == num_shards
        assert all(r.edges > 0 for r in result.shard_results)

    def test_multi_shard_in_process_rerun_is_identical(self):
        """Two sharded runs in the same interpreter agree bit for bit
        (the cross-interpreter version lives in test_runtime_determinism)."""
        events = list(synthetic_stream(200, 800, seed=4))
        runs = [
            run_sharded(
                events,
                system="fennel",
                num_shards=4,
                k=4,
                expected_vertices=200,
                expected_edges=800,
                batch_size=32,
            )
            for _ in range(2)
        ]
        assert runs[0].state.assignment() == runs[1].state.assignment()
        assert runs[0].shard_edge_counts() == runs[1].shard_edge_counts()

    def test_hash_is_shard_count_invariant(self):
        """Hash places by a stable hash of the vertex itself, so *any*
        shard count reproduces the single-process assignment — the
        strongest version of the merge-transparency property."""
        events = list(synthetic_stream(150, 600, seed=7))
        baseline = None
        for num_shards in (1, 3):
            result = run_sharded(
                events,
                system="hash",
                num_shards=num_shards,
                k=5,
                expected_vertices=150,
                expected_edges=600,
                batch_size=50,
            )
            if baseline is None:
                baseline = result.state.assignment()
            else:
                assert result.state.assignment() == baseline

    def test_killed_worker_surfaces_exit_signal(self):
        """A worker that dies *without* reporting (SIGKILL — the OOM-killer
        shape) must surface as an error naming the signal, within the
        liveness poll interval rather than the full result timeout."""
        import multiprocessing as mp_module
        import os
        import signal
        import threading
        import time

        events = list(synthetic_stream(200, 2000, seed=0))

        def killer():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                victims = [
                    p
                    for p in mp_module.active_children()
                    if p.name.startswith("loom-shard-")
                ]
                if victims:
                    try:
                        os.kill(victims[0].pid, signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover - lost race
                        pass
                    return
                time.sleep(0.005)

        thread = threading.Thread(target=killer)
        thread.start()
        start = time.monotonic()
        try:
            with pytest.raises(RuntimeError, match="SIGKILL"):
                run_sharded(
                    events,
                    system="ldg",
                    num_shards=2,
                    k=4,
                    expected_vertices=200,
                    expected_edges=2000,
                    result_timeout=120.0,
                )
        finally:
            thread.join()
        assert time.monotonic() - start < 60.0

    def test_worker_failure_surfaces(self):
        events = list(synthetic_stream(20, 40, seed=0))
        with pytest.raises((RuntimeError, ValueError)):
            # loom without a workload: the factory raises in the worker and
            # the driver must re-raise instead of hanging.
            run_sharded(
                events,
                system="loom",
                num_shards=2,
                k=2,
                expected_vertices=20,
                expected_edges=40,
                result_timeout=60.0,
            )

    def test_unknown_system_fails_fast(self):
        with pytest.raises(ValueError):
            run_sharded(
                [], system="metis", num_shards=2, k=2,
                expected_vertices=1, expected_edges=1,
            )

    def test_unknown_merge_rule_fails_fast(self):
        with pytest.raises(ValueError):
            run_sharded(
                [], system="ldg", num_shards=2, k=2,
                expected_vertices=1, expected_edges=1, merge="nope",
            )
