"""Tests for graph and stream serialisation."""

import pytest

from repro.graph.io import read_graph, read_stream, write_graph, write_stream
from repro.graph.stream import stream_edges


class TestGraphRoundTrip:
    def test_round_trip(self, tmp_path, random_graph):
        path = tmp_path / "g.txt"
        write_graph(random_graph, path)
        back = read_graph(path)
        assert back.num_vertices == random_graph.num_vertices
        assert set(back.edges()) == set(random_graph.edges())
        assert back.labels() == random_graph.labels()

    def test_name_defaults_to_stem(self, tmp_path, random_graph):
        path = tmp_path / "mygraph.txt"
        write_graph(random_graph, path)
        assert read_graph(path).name == "mygraph"

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# hi\n\nv 1 a\nv 2 b\ne 1 2\n")
        g = read_graph(path)
        assert g.num_edges == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("v 1 a\nwhat is this\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            read_graph(path)

    def test_string_vertex_ids_preserved(self, tmp_path):
        from repro.graph.labelled_graph import LabelledGraph

        g = LabelledGraph.from_edges([("x1", "a", "y2", "b")])
        path = tmp_path / "s.txt"
        write_graph(g, path)
        back = read_graph(path)
        assert back.has_edge("x1", "y2")


class TestStreamRoundTrip:
    def test_round_trip_preserves_order(self, tmp_path, random_graph):
        events = list(stream_edges(random_graph, "random", seed=3))
        path = tmp_path / "stream.txt"
        count = write_stream(events, path)
        assert count == len(events)
        back = read_stream(path)
        assert [e.edge for e in back] == [e.edge for e in events]
        assert [e.u_label for e in back] == [e.u_label for e in events]

    def test_malformed_stream_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("s 1 a 2\n")
        with pytest.raises(ValueError):
            read_stream(path)
