"""Shared fixtures: the paper's running examples and small graphs.

Also ensures ``src/`` is importable even without an installed package (the
offline environment installs via ``python setup.py develop``; this shim
keeps ``pytest`` working from a bare checkout too).  Plain helper functions
live in :mod:`helpers` — import them from there, never from ``conftest``.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.core.motifs import MotifIndex
from repro.core.signature import SignatureScheme
from repro.core.tpstry import TPSTry
from repro.datasets.figure1 import figure1_graph, figure1_workload
from repro.graph.labelled_graph import LabelledGraph
from repro.query.pattern import path_pattern
from repro.query.workload import Workload

from helpers import make_random_labelled_graph


@pytest.fixture
def fig1_graph() -> LabelledGraph:
    return figure1_graph()


@pytest.fixture
def fig1_workload() -> Workload:
    return figure1_workload()


@pytest.fixture
def fig1_trie(fig1_workload) -> TPSTry:
    return TPSTry.from_workload(fig1_workload)


@pytest.fixture
def fig1_index(fig1_trie) -> MotifIndex:
    return MotifIndex(fig1_trie, 0.4)


@pytest.fixture
def paper_scheme() -> SignatureScheme:
    """The worked example of Sec. 2.1: p = 11, r(a) = 3, r(b) = 10."""
    return SignatureScheme(p=11).with_values({"a": 3, "b": 10})


@pytest.fixture
def fig5_workload() -> Workload:
    """A workload whose 40% motifs are exactly the six of Fig. 5:
    a-b, b-c, a-b-c, a-b-a, b-a-b and the path a-b-a-b."""
    return Workload(
        [
            (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
        ],
        name="fig5",
    )


@pytest.fixture
def random_graph() -> LabelledGraph:
    return make_random_labelled_graph()
