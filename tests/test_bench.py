"""Tests for the harness, experiments and reporting (small scales)."""

import pytest

from repro.bench import experiments
from repro.bench.harness import (
    SYSTEMS,
    compare_systems,
    make_partitioner,
    run_system,
    scaled_window,
)
from repro.bench.reporting import render_series, render_table
from repro.datasets.registry import load_dataset
from repro.graph.stream import stream_edges
from repro.partitioning.state import PartitionState
from repro.query.executor import WorkloadExecutor


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("provgen", 420, seed=2)


class TestHarness:
    def test_make_partitioner_all_systems(self, tiny_dataset):
        g, wl = tiny_dataset.graph, tiny_dataset.workload
        for system in SYSTEMS:
            state = PartitionState.for_graph(2, g.num_vertices)
            p = make_partitioner(system, state, g, wl, window_size=20)
            assert p.name == system

    def test_make_partitioner_unknown(self, tiny_dataset):
        g, wl = tiny_dataset.graph, tiny_dataset.workload
        with pytest.raises(ValueError):
            make_partitioner("metis", PartitionState(2, 10), g, wl, 10)

    def test_scaled_window(self, tiny_dataset):
        w = scaled_window(tiny_dataset.graph, fraction=0.1, minimum=5)
        assert w == max(5, int(tiny_dataset.graph.num_edges * 0.1))

    def test_run_system_quality_and_report(self, tiny_dataset):
        g, wl = tiny_dataset.graph, tiny_dataset.workload
        events = list(stream_edges(g, "bfs", seed=0))
        executor = WorkloadExecutor(g, wl)
        run = run_system("ldg", g, wl, events, k=2, executor=executor)
        assert run.quality["assigned_vertices"] == g.num_vertices
        assert run.report is not None
        assert run.ms_per_10k_edges > 0
        assert run.edges == g.num_edges

    def test_compare_systems_relative_ipt(self, tiny_dataset):
        result = compare_systems(tiny_dataset, order="bfs", k=2, window_size=40)
        assert set(result.runs) == set(SYSTEMS)
        assert result.relative_ipt("hash") == pytest.approx(100.0)
        row = result.row()
        assert row["dataset"] == "provgen"
        assert all(s in row for s in SYSTEMS)

    def test_compare_without_execution(self, tiny_dataset):
        result = compare_systems(
            tiny_dataset, order="random", k=2, window_size=40, execute_workload=False
        )
        with pytest.raises(ValueError):
            result.relative_ipt("ldg")


class TestExperiments:
    def test_table1_tiny(self):
        result = experiments.table1(sizes={"provgen": 350}, seed=1)
        assert result.rows[0]["dataset"] == "provgen"
        assert result.rows[0]["labels"] == 3
        assert "Table 1" in result.render()

    def test_figure4_rows(self):
        result = experiments.figure4(max_p=60, sample_every=2)
        assert result.name == "figure4"
        # last row, strictest tolerance, most factors: high acceptance.
        last = result.rows[-1]
        assert last["tol5%/24f"] >= result.rows[0]["tol5%/24f"]

    def test_figure7_smoke(self):
        result = experiments.figure7(
            sizes={"provgen": 380}, datasets=("provgen",), orders=("bfs",), k=2
        )
        (row,) = result.rows
        assert row["hash"] == pytest.approx(100.0)
        assert row["loom"] <= 100.0

    def test_figure8_smoke(self):
        result = experiments.figure8(
            sizes={"provgen": 380}, datasets=("provgen",), ks=(2, 4)
        )
        assert [r["k"] for r in result.rows] == [2, 4]

    def test_figure9_smoke(self):
        result = experiments.figure9(
            dataset="provgen",
            num_vertices=380,
            window_sizes=(20, 80),
            k=2,
            orders=("bfs",),
        )
        assert [r["window"] for r in result.rows] == [20, 80]
        assert all(r["loom_ipt"] >= 0 for r in result.rows)

    def test_table2_smoke(self):
        result = experiments.table2(sizes={"provgen": 380}, num_edges=300)
        (row,) = result.rows
        for system in ("hash", "ldg", "fennel", "loom"):
            assert row[f"{system}_ms"] >= 0

    def test_ablation_smoke(self):
        result = experiments.ablation(dataset="provgen", num_vertices=380, k=2)
        variants = {r["variant"] for r in result.rows}
        assert "loom (full)" in variants
        assert "no rationing (l=1)" in variants

    def test_registry_of_experiments(self):
        assert set(experiments.EXPERIMENTS) == {
            "table1",
            "figure4",
            "figure7",
            "figure8",
            "figure9",
            "table2",
            "ablation",
            "stability",
        }

    def test_stability_smoke(self):
        result = experiments.stability(
            datasets=("provgen",), sizes={"provgen": 380}, seeds=(0, 1), k=2
        )
        (row,) = result.rows
        assert row["seeds"] == 2
        assert "(" in row["loom"]  # "mean (min-max)" formatting


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_render_table_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_series(self):
        text = render_series({"y1": [1.0, 2.0]}, x_values=[10, 20], x_name="t")
        assert "t" in text and "y1" in text

    def test_bool_formatting(self):
        assert "Y" in render_table([{"real": True}])


class TestCli:
    def test_main_figure4(self, capsys):
        from repro.bench.__main__ import main

        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
