"""detlint's own test suite: every rule fires on its bad fixture and
stays silent on the good twin; pragmas and baselines behave; and — the
teeth — the shipped tree is finding-free.

The fixtures lint *virtual* paths (``lint_source`` scopes by the path
string, not the filesystem), so each rule is probed exactly where its
scope table says it patrols, plus once outside it to prove scoping works.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import config
from repro.analysis.engine import (
    all_rules,
    apply_baseline,
    collect_pragmas,
    lint_paths,
    lint_source,
    load_baseline,
    rule_by_id,
    rule_applies,
    write_baseline,
)
from repro.analysis.__main__ import main as detlint_main

REPO_ROOT = Path(__file__).resolve().parents[1]

# ----------------------------------------------------------------------
# Per-rule fixtures: (virtual path, bad source, good source).
# Bad must raise at least one finding from the rule; good must raise none.
# ----------------------------------------------------------------------
FIXTURES = {
    "DET-repr": (
        "src/repro/core/mod.py",
        """
def order(vs, cache, d, u, v):
    vs.sort(key=repr)
    first = sorted(vs, key=lambda x: (len(x), str(x)))
    hit = cache.get(str(v))
    table = {repr(v): 1}
    probe = d[f"{u}"]
    return hit, table, probe, repr(u) <= repr(v), first
""",
        """
from typing import Dict, Optional


def order(vs, cache, d, u, v, rank):
    vs.sort(key=rank.__getitem__)
    labels: Dict[str, int] = {}
    name: Optional[str] = None
    if str(v) == "root":  # equality against a string stays legal
        labels["root"] = 1
    return sorted(vs), cache.get(v), d[u], name
""",
    ),
    "DET-setiter": (
        "src/repro/core/mod.py",
        """
def drain(extra):
    s = {1, 2, 3}
    out = []
    for x in s:
        out.append(x)
    listed = list(s)
    comped = [x for x in s]
    yield from s
    return out, listed, comped
""",
        """
from typing import Set


def drain(ekeys: Set[int]):
    s = {1, 2, 3}
    out = []
    for x in sorted(s):
        out.append(x)
    n = len(s)
    lo = min(s)
    ranked = sorted(x for x in s)
    for x in sorted(ekeys):
        out.append(x)
    members = {x for x in s}  # set-to-set stays unordered: legal
    return out, n, lo, ranked, members
""",
    ),
    "DET-random": (
        "src/repro/serving/mod.py",
        """
import random

import numpy as np
from random import shuffle


def jitter(xs):
    random.shuffle(xs)
    shuffle(xs)
    r = np.random.rand(3)
    rng = np.random.default_rng()
    return r, rng
""",
        """
import random

import numpy as np


def jitter(xs, seed):
    rng = random.Random(seed)
    nrng = np.random.default_rng(seed)
    rng.shuffle(xs)
    return nrng
""",
    ),
    "DET-time": (
        "src/repro/core/mod.py",
        """
import time
from datetime import datetime


def stamp():
    t = time.time()
    n = time.time_ns()
    d = datetime.now()
    return t, n, d
""",
        """
import time


def stamp():
    start = time.perf_counter()
    mono = time.monotonic()
    return time.perf_counter() - start, mono
""",
    ),
    "FLT-accum": (
        "src/repro/partitioning/mod.py",
        """
def score(weights_list):
    weights = {0.5, 0.25, 0.125}
    direct = sum(weights)
    via_gen = sum(w * 2.0 for w in weights)
    return direct + via_gen
""",
        """
def score(weights_list):
    weights = {0.5, 0.25, 0.125}
    pinned = sum(sorted(weights))
    listed = sum(weights_list)
    return pinned + listed
""",
    ),
    "NP-dtype": (
        "src/repro/core/mod.py",
        """
import numpy as np


def build(keys, buf):
    a = np.array(keys)
    z = np.zeros(4)
    f = np.frombuffer(buf)
    return a, z, f
""",
        """
import numpy as np


def build(keys, buf, proto):
    a = np.array(keys, dtype=np.int64)
    z = np.zeros(4, np.int64)
    f = np.frombuffer(buf, dtype=np.int64)
    like = np.zeros_like(proto)
    return a, z, f, like
""",
    ),
    "MP-pickle": (
        "src/repro/runtime/mod.py",
        """
from multiprocessing import Process


class NotWire:
    pass


def ship(q):
    q.put(lambda: 1)
    q.put(NotWire())

    def inner():
        pass

    q.put(inner)
    p = Process(target=inner)
    p2 = Process(target=lambda: None)
    return p, p2
""",
        """
from multiprocessing import Process

from repro.runtime.messages import ShardResult


def work():
    pass


def ship(q, result: ShardResult):
    q.put(result)
    q.put(ShardResult(*()))
    q.put((1, "ok", [2, 3]))
    p = Process(target=work)
    return p
""",
    ),
    "INT-boundary": (
        "src/repro/core/mod.py",
        """
from typing import Dict

from repro.graph.interning import Vertex

cache: Dict[Vertex, int] = {}


def probe(v: Vertex, d):
    label = v.label
    return d[v], label
""",
        """
from typing import Dict

from repro.graph.interning import Vertex

by_id: Dict[int, int] = {}


def probe(v: Vertex, interner, d):
    vid = interner.intern(v)
    return d[vid]
""",
    ),
}


def _rules_fired(path, source, rule_id):
    result = lint_source(source, path, rules=[rule_by_id(rule_id)])
    assert result.error == "", result.error
    return result.findings


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    path, bad, _good = FIXTURES[rule_id]
    findings = _rules_fired(path, bad, rule_id)
    assert findings, f"{rule_id} stayed silent on its bad fixture"
    assert all(f.rule == rule_id for f in findings)
    for f in findings:
        assert f.line > 0 and f.col > 0
        assert f.message
        assert f.format_text().startswith(f"{path}:{f.line}:{f.col}: {rule_id}:")


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_silent_on_good_fixture(rule_id):
    path, _bad, good = FIXTURES[rule_id]
    findings = _rules_fired(path, good, rule_id)
    assert findings == [], [f.format_text() for f in findings]


def test_every_registered_rule_has_a_fixture_and_scope():
    registered = {cls.rule_id for cls in all_rules()}
    assert len(registered) >= 8
    assert registered == set(FIXTURES), "every rule needs bad/good fixtures here"
    assert registered <= set(config.RULE_SCOPES), "every rule needs a scope entry"


def test_bad_fixture_counts_are_meaningful():
    # The DET-repr bad fixture exercises every checked position.
    path, bad, _ = FIXTURES["DET-repr"]
    findings = _rules_fired(path, bad, "DET-repr")
    assert len(findings) >= 5


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
def test_rules_do_not_fire_outside_their_scope():
    _path, bad, _good = FIXTURES["DET-repr"]
    result = lint_source(bad, "src/repro/datasets/mod.py", rules=[rule_by_id("DET-repr")])
    assert result.findings == []


def test_exempt_paths_stay_exempt():
    _path, bad, _good = FIXTURES["DET-random"]
    for exempt in ("benchmarks/bench_x.py", "src/repro/bench/mod.py"):
        result = lint_source(bad, exempt, rules=[rule_by_id("DET-random")])
        assert result.findings == [], exempt
    _path, bad, _good = FIXTURES["DET-time"]
    result = lint_source(bad, "src/repro/serving/traffic.py", rules=[rule_by_id("DET-time")])
    assert result.findings == []


def test_rule_applies_matches_absolute_paths_too():
    assert rule_applies("DET-repr", "src/repro/core/loom.py")
    assert rule_applies("DET-repr", "/abs/checkout/src/repro/core/loom.py")
    assert not rule_applies("DET-repr", "src/repro/datasets/zoo.py")
    assert not rule_applies("NO-such-rule", "src/repro/core/loom.py")


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_and_is_counted():
    src = "s = {1, 2}\nout = list(s)  # detlint: disable=DET-setiter (proved order-free)\n"
    result = lint_source(src, "src/repro/core/mod.py", rules=[rule_by_id("DET-setiter")])
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET-setiter"]


def test_pragma_on_another_line_does_not_suppress():
    src = "# detlint: disable=DET-setiter\ns = {1, 2}\nout = list(s)\n"
    result = lint_source(src, "src/repro/core/mod.py", rules=[rule_by_id("DET-setiter")])
    assert [f.rule for f in result.findings] == ["DET-setiter"]


def test_file_pragma_and_all_keyword():
    src = "# detlint: disable-file=DET-setiter\ns = {1, 2}\nout = list(s)\nmore = list(s)\n"
    result = lint_source(src, "src/repro/core/mod.py", rules=[rule_by_id("DET-setiter")])
    assert result.findings == []
    assert len(result.suppressed) == 2

    src = "s = {1, 2}\nout = list(s)  # detlint: disable=all\n"
    result = lint_source(src, "src/repro/core/mod.py", rules=[rule_by_id("DET-setiter")])
    assert result.findings == [] and len(result.suppressed) == 1


def test_pragma_parser_handles_lists_and_justifications():
    line_disables, file_disables = collect_pragmas(
        "x = 1  # detlint: disable=DET-repr, DET-setiter (both justified here)\n"
        "# detlint: disable-file=NP-dtype\n"
        's = "# detlint: disable=MP-pickle inside a string is ignored"\n'
    )
    assert line_disables == {1: {"DET-repr", "DET-setiter"}}
    assert file_disables == {"NP-dtype"}


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_grandfathering(tmp_path):
    path, bad, _good = FIXTURES["NP-dtype"]
    findings = _rules_fired(path, bad, "NP-dtype")
    assert len(findings) == 3

    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))
    baseline = load_baseline(str(baseline_file))

    new, grandfathered = apply_baseline(findings, baseline)
    assert new == [] and len(grandfathered) == 3


def test_baseline_is_a_multiset_and_keyed_on_code_text(tmp_path):
    path, bad, _good = FIXTURES["NP-dtype"]
    findings = _rules_fired(path, bad, "NP-dtype")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings[:1], str(baseline_file))
    baseline = load_baseline(str(baseline_file))

    # Only one entry: the first matching finding is grandfathered, the
    # rest (different code lines) stay new.
    new, grandfathered = apply_baseline(findings, baseline)
    assert len(grandfathered) == 1 and len(new) == 2

    # A grandfathered line that *changes* loses its grandfather status.
    changed = bad.replace("np.array(keys)", "np.array(list(keys))")
    refindings = _rules_fired(path, changed, "NP-dtype")
    new, grandfathered = apply_baseline(refindings, baseline)
    assert all(f.code != "a = np.array(keys)" for f in grandfathered)
    assert len(new) == 3


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_syntax_error_is_reported_not_raised():
    result = lint_source("def broken(:\n", "src/repro/core/mod.py")
    assert result.error and "syntax error" in result.error
    assert result.findings == []


def test_findings_are_sorted_deterministically():
    path, bad, _good = FIXTURES["DET-repr"]
    result = lint_source(bad, path)
    keys = [f.sort_key for f in result.findings]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write(tmp_path, name, text):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


def test_cli_exit_codes(tmp_path, capsys):
    bad = _write(tmp_path, "src/repro/core/mod.py", FIXTURES["NP-dtype"][1])
    good = _write(tmp_path, "src/repro/core/ok.py", FIXTURES["NP-dtype"][2])
    broken = _write(tmp_path, "src/repro/core/broken.py", "def broken(:\n")

    assert detlint_main([str(good)]) == 0
    assert detlint_main([str(bad)]) == 1
    assert detlint_main([str(broken)]) == 2
    capsys.readouterr()


def test_cli_json_report_and_baseline_flow(tmp_path, capsys):
    bad = _write(tmp_path, "src/repro/core/mod.py", FIXTURES["NP-dtype"][1])
    report_file = tmp_path / "report.json"
    baseline_file = tmp_path / "baseline.json"

    assert detlint_main([str(bad), "--json-report", str(report_file)]) == 1
    payload = json.loads(report_file.read_text(encoding="utf-8"))
    assert payload["schema_version"] == 1
    assert payload["ok"] is False
    assert payload["counts"]["findings"] == 3
    assert all(f["rule"] == "NP-dtype" for f in payload["findings"])

    assert detlint_main([str(bad), "--write-baseline", str(baseline_file)]) == 0
    assert detlint_main([str(bad), "--baseline", str(baseline_file)]) == 0

    out = capsys.readouterr().out
    assert "grandfathered" in out


def test_cli_rule_filter_and_list_rules(capsys):
    assert detlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_rules():
        assert cls.rule_id in out
    assert detlint_main(["--rule", "NO-such", "nowhere"]) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# The teeth: the shipped tree is finding-free.
# ----------------------------------------------------------------------
def test_shipped_tree_is_finding_free():
    report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    details = [f.format_text() for f in report.findings] + report.errors
    assert report.ok, details
    assert report.files_checked > 100
    # Every suppression in the tree is a deliberate, justified pragma —
    # if this count drifts, a pragma was added or removed: re-audit.
    assert len(report.suppressed) == 9, [f.format_text() for f in report.suppressed]
