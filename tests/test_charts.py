"""Tests for the ASCII chart rendering used by the benchmark CLI."""

from repro.bench.charts import bar_chart, grouped_bar_chart, line_plot


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart({"a": 50.0, "b": 100.0}, width=10, max_value=100.0)
        lines = text.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_values_beyond_max_are_clamped(self):
        text = bar_chart({"x": 150.0}, width=10, max_value=100.0)
        assert text.count("█") == 10

    def test_unit_and_title(self):
        text = bar_chart({"x": 1.0}, unit="%", title="T")
        assert text.splitlines()[0] == "T"
        assert text.endswith("1%")

    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_zero_scale_safe(self):
        assert "0" in bar_chart({"x": 0.0})


class TestGroupedBarChart:
    def test_one_block_per_group(self):
        rows = [
            {"cell": "g1", "hash": 100.0, "loom": 50.0},
            {"cell": "g2", "hash": 100.0, "loom": 75.0},
        ]
        text = grouped_bar_chart(rows, "cell", ("hash", "loom"), width=8)
        assert text.count("-- g") == 2
        assert "loom" in text

    def test_missing_series_skipped(self):
        rows = [{"cell": "g", "hash": 100.0}]
        text = grouped_bar_chart(rows, "cell", ("hash", "loom"))
        assert "hash" in text
        assert "loom |" not in text


class TestLinePlot:
    def test_contains_markers_and_axes(self):
        text = line_plot([1, 2, 3, 4], {"series": [10.0, 20.0, 15.0, 30.0]}, height=6, width=20)
        assert "s" in text  # marker = first letter
        assert "+--" in text
        assert "s = series" in text

    def test_descending_curve_orientation(self):
        """A falling series must place its marker higher at small x."""
        text = line_plot([0, 10], {"y": [100.0, 0.0]}, height=5, width=11)
        rows = [line for line in text.splitlines() if "|" in line]
        first_marker_row = next(i for i, r in enumerate(rows) if "y" in r.split("|")[1][:2])
        last_marker_row = next(i for i, r in enumerate(rows) if "y" in r.split("|")[1][-2:])
        assert first_marker_row < last_marker_row

    def test_flat_series_safe(self):
        text = line_plot([1, 2], {"y": [5.0, 5.0]})
        assert "y" in text

    def test_empty(self):
        assert "(no data)" in line_plot([], {})


class TestCliCharts:
    def test_figure9_cli_renders_plot(self, capsys):
        from repro.bench.__main__ import main

        assert main(["figure9", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Loom ipt vs window" in out
        assert "+--" in out

    def test_figure7_chart_shape(self):
        from repro.bench.__main__ import _chart_for
        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult(name="figure7", title="t")
        result.rows = [
            {"dataset": "d", "order": "bfs", "k": 8, "hash": 100.0, "ldg": 70.0, "fennel": 60.0, "loom": 50.0}
        ]
        chart = _chart_for("figure7", result)
        assert "d (order=bfs)" in chart
        assert "hash" in chart and "loom" in chart

    def test_table_experiments_have_no_chart(self):
        from repro.bench.__main__ import _chart_for
        from repro.bench.experiments import ExperimentResult

        assert _chart_for("table1", ExperimentResult(name="table1", title="t")) == ""
