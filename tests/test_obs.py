"""repro.obs: registry, tracing, windowed rollups, formatting, CLI surfaces.

Two properties carry the whole layer and get gated here:

* **Disabled is free.**  A disabled registry hands out the shared NULL
  singletons, whose methods allocate nothing — measured with
  ``sys.getallocatedblocks`` so a regression that sneaks an allocation
  into a stub (a closure, a dict, an f-string) fails a test rather than
  a profile.
* **Enabled is out-of-band.**  Telemetry reads existing state and never
  feeds placements or answers; ``tests/test_obs_determinism.py`` holds
  the subprocess double-run half of that contract, this file the unit
  half (components bind stubs while disabled, real instruments after
  ``enable()``, and snapshots render deterministically sorted).
"""

import gc
import sys

import pytest

from repro import obs
from repro.datasets.registry import load_dataset
from repro.graph.stream import stream_edges
from repro.obs.format import flatten, render_lines, render_table
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, load_jsonl, masked
from repro.obs.windowed import NULL_WINDOW, WindowedStats
from repro.partitioning.state import PartitionState


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with the process-local obs disabled."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("provgen", 300, seed=3)


def _loom_over(dataset, k=4, window=80):
    from repro.core.loom import LoomPartitioner

    state = PartitionState.for_graph(k, dataset.graph.num_vertices)
    partitioner = LoomPartitioner(state, dataset.workload, window_size=window)
    partitioner.ingest_all(stream_edges(dataset.graph, "bfs", seed=3))
    return state, partitioner


class TestRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.window("w") is reg.window("w")

    def test_counter_and_gauge(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        g = reg.gauge("depth")
        g.set(3)
        g.high_water(7)
        g.high_water(2)  # below the mark: no change
        snap = reg.snapshot()
        assert snap["c"] == 5
        assert snap["depth"] == 7

    def test_histogram_buckets_and_percentiles(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        for value in (1, 5, 50, 50, 200, 5000):
            h.observe(value)
        # 2 in ≤10, 2 in ≤100, 1 in ≤1000, 1 overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == 5306
        assert h.percentile(50) == 100
        # Overflow quotes the last finite bound rather than inventing one.
        assert h.percentile(99) == 1000
        assert h.as_metrics() == {"count": 6, "total": 5306, "p50": 100, "p95": 1000}

    def test_empty_histogram_percentile_zero(self):
        assert Histogram("lat").percentile(95) == 0

    def test_snapshot_flat_and_sorted(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("z.late").inc()
        reg.counter("a.early").inc(2)
        reg.histogram("lat", (10,)).observe(3)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.early"] == 2
        assert snap["lat.count"] == 1

    def test_collector_replace_semantics(self):
        """Re-registering a prefix replaces the collector — a bench loop
        reconstructing its matcher every repeat must not stack dupes."""
        reg = MetricsRegistry(enabled=True)
        reg.register_collector("m", lambda: {"stale": 1})
        reg.register_collector("m", lambda: {"fresh": 2})
        snap = reg.snapshot()
        assert snap == {"m.fresh": 2}

    def test_disabled_hands_out_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM
        assert reg.window("w") is NULL_WINDOW

    def test_disabled_collector_is_noop(self):
        calls = []
        reg = MetricsRegistry(enabled=False)
        reg.register_collector("m", lambda: calls.append(1) or {})
        assert reg.snapshot() == {}
        assert calls == []


class TestNullStubCost:
    def test_disabled_stubs_allocate_nothing(self):
        """The zero-allocation gate: a hot loop hammering every disabled
        stub must not grow the interpreter's allocated-block count."""
        stubs = (NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_WINDOW, NULL_TRACER)

        def hammer(n):
            counter, gauge, histogram, window, tracer_ = stubs
            for i in range(n):
                counter.inc()
                counter.inc(3)
                gauge.set(i)
                gauge.high_water(i)
                histogram.observe(i)
                window.record("q", 2, i)
                tracer_.event("kind", a=i)

        hammer(64)  # warm caches, intern small ints
        gc.collect()
        before = sys.getallocatedblocks()
        hammer(4096)
        gc.collect()
        after = sys.getallocatedblocks()
        # Allow a couple of blocks of interpreter noise, nothing linear.
        assert after - before <= 4

    def test_null_event_returns_sentinel_id(self):
        assert NULL_TRACER.event("anything", x=1) == -1
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events() == []

    def test_enabled_flags(self):
        """Hot call sites guard kwargs construction on ``.enabled``."""
        assert Tracer.enabled is True
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False


class TestTracer:
    def test_sequence_ids_and_fields(self):
        t = Tracer()
        first = t.event("a.start", x=1)
        second = t.event("a.end", span=first)
        assert (first, second) == (0, 1)
        events = t.events()
        assert events[0]["kind"] == "a.start"
        assert events[1]["span"] == 0
        assert all(rec["ts"] > 0 for rec in events)

    def test_ring_drops_oldest(self):
        t = Tracer(capacity=4)
        for i in range(10):
            t.event("e", i=i)
        assert len(t) == 4
        assert t.emitted == 10
        assert t.dropped == 6
        assert [rec["i"] for rec in t.events()] == [6, 7, 8, 9]

    def test_export_roundtrip_with_drop_marker(self, tmp_path):
        t = Tracer(capacity=2)
        for i in range(3):
            t.event("e", i=i)
        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(str(path)) == 2
        events = load_jsonl(str(path))
        assert events[0] == {"i": -1, "kind": "trace.dropped", "n": 1, "ts": 0}
        assert [rec["i"] for rec in events[1:]] == [1, 2]

    def test_masked_strips_only_ts(self):
        t = Tracer()
        t.event("e", value=7)
        [rec] = masked(t.events())
        assert rec == {"i": 0, "kind": "e", "value": 7}


class TestWindowedStats:
    def test_rollup_counts_and_shares(self):
        w = WindowedStats("serving", interval=4, intervals=4)
        for _ in range(3):
            w.record("abc", 2, 10)
        w.record("abab", 6, 30)
        roll = w.rollup()
        assert roll["abc"]["requests"] == 3
        assert roll["abc"]["frequency"] == 0.75
        assert roll["abc"]["hops_per_query"] == 2.0
        assert roll["abab"]["hops"] == 6
        assert roll["abab"]["p50_us"] == 30

    def test_sliding_window_evicts_old_intervals(self):
        w = WindowedStats("serving", interval=2, intervals=2)
        for _ in range(2):
            w.record("old", 1, 1)
        for _ in range(4):
            w.record("new", 1, 1)
        # Two closed 'new' intervals fill the deque; 'old' has slid out.
        assert set(w.rollup()) == {"new"}
        assert w.recorded == 6

    def test_deltas_need_two_closed_intervals(self):
        w = WindowedStats("serving", interval=2, intervals=4)
        w.record("q", 1, 1)
        w.record("q", 1, 1)
        assert w.deltas() == {}

    def test_deltas_flag_heating_query(self):
        w = WindowedStats("serving", interval=4, intervals=4)
        # Interval 1: cold/hot split 3:1; interval 2: 1:3 with longer hops.
        for _ in range(3):
            w.record("cold", 1, 1)
        w.record("hot", 1, 1)
        w.record("cold", 1, 1)
        for _ in range(3):
            w.record("hot", 3, 1)
        deltas = w.deltas()
        assert deltas["hot"]["frequency_delta"] > 0
        assert deltas["cold"]["frequency_delta"] < 0
        assert deltas["hot"]["hops_delta"] > 0

    def test_as_metrics_flat_names(self):
        w = WindowedStats("serving", interval=8)
        w.record("abc", 2, 5)
        metrics = w.as_metrics()
        assert metrics["total_requests"] == 1
        assert metrics["abc.requests"] == 1
        assert metrics["abc.hops_per_query"] == 2.0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            WindowedStats("w", interval=0)


class TestFormat:
    def test_flatten_nested_and_lists(self):
        flat = flatten({"a": {"b": 1, "c": [1, 2]}, "d": 2.5})
        assert flat == {"a.b": 1, "a.c": "1,2", "d": 2.5}

    def test_flatten_prefix_gets_dot(self):
        """Regression: a bare prefix must join with a dot, not concatenate
        ('obs' + 'windowed…' once rendered as 'obswindowed…')."""
        assert flatten({"x": 1}, prefix="obs") == {"obs.x": 1}
        assert flatten({"x": 1}, prefix="obs.") == {"obs.x": 1}

    def test_render_lines_sorted_and_trimmed_floats(self):
        lines = render_lines({"b": 1.2500, "a": True})
        assert lines == ["a: True", "b: 1.25"]

    def test_render_table_alignment(self):
        lines = render_table([{"k": "x", "n": 10}, {"k": "yy", "n": 5}], ("k", "n"))
        assert lines[0].split() == ["k", "n"]
        assert len(lines) == 4
        assert render_table([], ("k",)) == []


class TestModuleLifecycle:
    def test_starts_disabled(self):
        assert not obs.enabled()
        assert obs.counter("x") is NULL_COUNTER
        assert obs.tracer() is NULL_TRACER

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.enabled()
        real = obs.counter("x")
        assert real is not NULL_COUNTER
        obs.disable()
        assert obs.counter("x") is NULL_COUNTER

    def test_binding_is_construction_time(self):
        """The documented contract: instruments fetched while disabled
        stay NULL stubs even after a later enable()."""
        bound_early = obs.counter("early")
        obs.enable()
        assert bound_early is NULL_COUNTER
        assert obs.counter("early") is not NULL_COUNTER

    def test_export_trace_none_when_tracing_off(self, tmp_path):
        obs.enable(trace=False)
        assert obs.export_trace(str(tmp_path / "t.jsonl")) is None
        assert not (tmp_path / "t.jsonl").exists()

    def test_export_trace_writes_jsonl(self, tmp_path):
        obs.enable(trace=True)
        obs.tracer().event("e", i=1)
        path = tmp_path / "t.jsonl"
        assert obs.export_trace(str(path)) == 1
        assert load_jsonl(str(path))[0]["kind"] == "e"


class TestComponentBinding:
    def test_loom_binds_null_stubs_while_disabled(self, dataset):
        _, partitioner = _loom_over(dataset)
        assert partitioner._obs_batches is NULL_COUNTER
        assert partitioner._obs_events is NULL_COUNTER
        assert partitioner._obs_window_fill is NULL_GAUGE
        assert partitioner._trace is NULL_TRACER
        assert partitioner._trace_on is False

    def test_loom_populates_snapshot_when_enabled(self, dataset):
        obs.enable()
        _loom_over(dataset)
        snap = obs.snapshot()
        assert snap["loom.ingest.batches"] >= 1
        assert snap["loom.ingest.events"] == dataset.graph.num_edges
        assert snap["loom.window.high_water"] > 0
        # Collectors pull the matcher/partitioner stat dicts lazily.
        assert any(key.startswith("loom.matcher.") for key in snap)
        assert any(key.startswith("loom.partitioner.") for key in snap)

    def test_serving_engine_rollups_and_attribution(self, dataset):
        from repro.serving import ServingEngine, TrafficDriver

        obs.enable()
        state, _ = _loom_over(dataset)
        engine = ServingEngine(dataset.graph, state, dataset.workload, cache=True)
        TrafficDriver(engine, seed=1, zipf_s=1.1).run(64, system="loom")
        snap = obs.snapshot()
        assert snap["windowed.serving.total_requests"] == 64
        # Hop attribution keys: <query>.l<label>.p<partition>
        hop_keys = [key for key in snap if key.startswith("serve.hops.")]
        assert hop_keys
        assert all(".l" in key and ".p" in key for key in hop_keys)
        # The cache collector reads the cache's own stats — no per-request
        # double counting in the registry.
        assert "serve.cache.hits" in snap or any(
            key.startswith("serve.cache.") for key in snap
        )

    def test_identical_results_with_and_without_obs(self, dataset):
        baseline_state, _ = _loom_over(dataset)
        obs.enable(trace=True)
        traced_state, _ = _loom_over(dataset)
        assert baseline_state.export_assignment() == traced_state.export_assignment()


class TestCliSurfaces:
    @pytest.fixture()
    def files(self, tmp_path, dataset):
        from repro.graph.io import write_graph
        from repro.query.io import write_workload

        graph_path = tmp_path / "graph.txt"
        workload_path = tmp_path / "workload.txt"
        write_graph(dataset.graph, graph_path)
        write_workload(dataset.workload, workload_path)
        return graph_path, workload_path, tmp_path

    def test_cli_obs_trace_serve_end_to_end(self, files, capsys):
        from repro.partition_cli import main

        graph_path, workload_path, tmp_path = files
        trace_path = tmp_path / "trace.jsonl"
        rc = main(
            [
                str(graph_path),
                "--workload",
                str(workload_path),
                "--system",
                "loom",
                "--k",
                "2",
                "--window",
                "80",
                "--serve",
                "40",
                "--stats",
                "--trace-out",
                str(trace_path),
                "--out",
                str(tmp_path / "assignment.tsv"),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "obs.loom.ingest.batches:" in err
        # --stats executes the workload through the same engine, so the
        # window holds the 40 served requests plus the execution pass.
        assert "obs.windowed.serving.total_requests:" in err
        assert "obs.serve.hops." in err
        assert "obs.serve.cache.hits:" in err
        assert f"trace written to {trace_path}" in err
        events = load_jsonl(str(trace_path))
        kinds = {rec["kind"] for rec in events}
        assert "serve.done" in kinds

    def test_summarize_digests_trace(self, files, capsys):
        from repro.obs.__main__ import main as obs_main
        from repro.partition_cli import main

        graph_path, workload_path, tmp_path = files
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                str(graph_path),
                "--workload",
                str(workload_path),
                "--system",
                "loom",
                "--k",
                "2",
                "--window",
                "80",
                "--serve",
                "30",
                "--trace-out",
                str(trace_path),
                "--out",
                str(tmp_path / "assignment.tsv"),
            ]
        )
        capsys.readouterr()
        assert obs_main(["summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "serve.done" in out
        assert "hops/query" in out

    def test_summarize_missing_file(self, capsys, tmp_path):
        from repro.obs.__main__ import main as obs_main

        assert obs_main(["summarize", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_harness_stats_lines_share_formatter(self, dataset):
        from repro.bench.harness import run_system

        events = list(stream_edges(dataset.graph, "bfs", seed=3))
        run = run_system(
            "loom",
            dataset.graph,
            dataset.workload,
            events,
            k=2,
            window_size=80,
            seed=3,
        )
        lines = run.stats_lines()
        assert lines == sorted(lines)
        assert all(line.startswith("loom.matcher.") for line in lines)


class TestTrendSurfaces:
    def test_sparkline_shape(self):
        from repro.bench.charts import SPARK_CHARS, sparkline

        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert sparkline([5, 5, 5]) == SPARK_CHARS[3] * 3
        assert sparkline([]) == "(no data)"
        assert len(sparkline(list(range(100)), width=10)) == 10

    @pytest.fixture()
    def history_db(self, tmp_path):
        from repro.experiment.db import ResultsDB

        db = ResultsDB(tmp_path / "results.db")
        experiment_id = db.ensure_experiment("nightly", "hash", "{}")
        for value in (100.0, 110.0, 121.0):
            db.record_trial(
                experiment_id,
                "matcher",
                "matcher",
                {},
                0,
                "ok",
                1.0,
                {"edges_per_sec": value, "note": "text rows are skipped"},
            )
        db.record_trial(
            experiment_id, "matcher", "matcher", {}, 0, "failed", 1.0, {}, "boom"
        )
        yield db, tmp_path / "results.db"
        db.close()

    def test_metric_history_keeps_every_ok_row(self, history_db):
        db, _ = history_db
        history = db.metric_history("matcher", "edges_per_sec")
        assert [value for _, value in history] == [100.0, 110.0, 121.0]
        assert db.metric_history("matcher", "absent") == []
        assert db.trial_ids_with_metric("edges_per_sec") == ["matcher"]

    def test_trend_command_renders_sparkline(self, history_db, capsys):
        from repro.experiment.__main__ import main as experiment_main

        _, db_path = history_db
        rc = experiment_main(["trend", "edges_per_sec", "--db", str(db_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matcher" in out
        assert "21" in out  # delta %: (121-100)/100
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_trend_command_without_history(self, tmp_path, capsys):
        from repro.experiment.__main__ import main as experiment_main
        from repro.experiment.db import ResultsDB

        ResultsDB(tmp_path / "empty.db").close()
        rc = experiment_main(
            ["trend", "edges_per_sec", "--db", str(tmp_path / "empty.db")]
        )
        assert rc == 1
        assert "no numeric history" in capsys.readouterr().err
