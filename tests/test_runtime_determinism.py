"""Sharded-driver determinism under hash-seed variation.

The runtime's promise (see the ``repro.runtime.driver`` docstring): for a
fixed shard count and batch size, double runs produce **bit-identical
merged assignments** — routing is a pure integer function of the interned
endpoint pair, each worker is order-deterministic over its shard stream,
and the merge resolves vertices in driver-interner id order.  Queue
scheduling may interleave wall-clock progress differently between runs,
but never the content of any shard stream.

Like ``tests/test_determinism.py`` this is checked the only way that
actually proves it: fresh interpreter runs under different
``PYTHONHASHSEED`` values (which randomise str/tuple hashing and heap
layout), whose worker *processes* inherit the varied seed too.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

# The pipeline under test: a labelled graph with string-ish vertices (the
# realistic case for a multi-process run — vertices must pickle), streamed
# BFS, partitioned by the sharded runtime, merged assignment printed.
PIPELINE = """
import json, random, sys

from repro.graph.labelled_graph import LabelledGraph
from repro.graph.stream import stream_edges
from repro.partitioning import registry
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload
from repro.runtime import GraphTotals, run_sharded

system = sys.argv[1]
num_shards = int(sys.argv[2])

LABELS = ["a", "b", "c"]
N, E = 60, 140
rng = random.Random(4)
g = LabelledGraph("runtime-determinism")
vertices = [f"v{i}" for i in range(N)]
for i, v in enumerate(vertices):
    g.add_vertex(v, LABELS[i % 3])
for i in range(1, N):
    g.add_edge(vertices[i - 1], vertices[i])
added = N - 1
while added < E:
    a, b = rng.randrange(N), rng.randrange(N)
    if a != b and not g.has_edge(vertices[a], vertices[b]):
        g.add_edge(vertices[a], vertices[b])
        added += 1

workload = Workload(
    [
        (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
        (path_pattern(["a", "b", "c"], name="abc"), 0.5),
    ],
    name="determinism",
)
events = list(stream_edges(g, "bfs", seed=3))

result = run_sharded(
    events,
    system=system,
    num_shards=num_shards,
    k=4,
    expected_vertices=N,
    expected_edges=E,
    workload=workload if system == "loom" else None,
    window_size=40 if system == "loom" else None,
    seed=0,
    batch_size=16,
)

single = None
if num_shards == 1:
    state = PartitionState.for_graph(4, N)
    partitioner = registry.create(
        system,
        state,
        graph=GraphTotals(N, E),
        workload=workload if system == "loom" else None,
        window_size=40 if system == "loom" else None,
        seed=0,
    )
    partitioner.ingest_all(events)
    single = sorted(state.assignment().items())

print(json.dumps({
    "assignment": sorted(result.state.assignment().items()),
    "shard_edges": result.shard_edge_counts(),
    "conflicts": result.merge.conflicts,
    "single_process": single,
}))
"""


def _run_pipeline(system: str, num_shards: int, hashseed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", PIPELINE, system, str(num_shards)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("num_shards", [1, 2, 4])
@pytest.mark.parametrize("system", ["ldg", "loom"])
def test_sharded_assignments_invariant_under_hashseed(system, num_shards):
    """Double-runs in fresh interpreters under different hash seeds must
    agree bit for bit — shard streams, conflicts, and merged assignment."""
    runs = [_run_pipeline(system, num_shards, seed) for seed in (1, 4242)]
    assert runs[0]["shard_edges"] == runs[1]["shard_edges"]
    assert runs[0]["conflicts"] == runs[1]["conflicts"]
    assert runs[0]["assignment"] == runs[1]["assignment"]
    assert len(runs[0]["assignment"]) == 60  # the pass placed everything


@pytest.mark.parametrize("system", ["ldg", "fennel", "hash"])
def test_one_shard_matches_single_process_cross_interpreter(system):
    """``--shards 1`` reproduces the existing single-process path exactly,
    proven in a fresh interpreter (not just in-process state)."""
    run = _run_pipeline(system, 1, hashseed=7)
    assert run["single_process"] is not None
    assert run["assignment"] == run["single_process"]


# The live pipeline: ingest through a LiveCluster in lock-step rounds with
# a full serve burst between rounds, printing every answer, hop count and
# the summed shard cache stats.  Shard servers inherit the varied
# PYTHONHASHSEED like the batch workers do.
LIVE_PIPELINE = """
import json, random, sys

from repro.graph.labelled_graph import LabelledGraph
from repro.graph.stream import batched, stream_edges
from repro.partitioning import registry
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload
from repro.runtime.live import LiveCluster

num_shards = int(sys.argv[1])

LABELS = ["a", "b", "c"]
N, E = 60, 140
rng = random.Random(4)
g = LabelledGraph("live-determinism")
vertices = [f"v{i}" for i in range(N)]
for i, v in enumerate(vertices):
    g.add_vertex(v, LABELS[i % 3])
for i in range(1, N):
    g.add_edge(vertices[i - 1], vertices[i])
added = N - 1
while added < E:
    a, b = rng.randrange(N), rng.randrange(N)
    if a != b and not g.has_edge(vertices[a], vertices[b]):
        g.add_edge(vertices[a], vertices[b])
        added += 1

workload = Workload(
    [
        (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
        (path_pattern(["a", "b", "c"], name="abc"), 0.5),
    ],
    name="determinism",
)
events = list(stream_edges(g, "bfs", seed=3))

state = PartitionState.for_graph(4, N)
partitioner = registry.create(
    "loom", state, graph=g, workload=workload, window_size=40, seed=0
)
live_graph = LabelledGraph("live")
transcript = []
with LiveCluster(
    live_graph, state, workload, num_shards=num_shards, cache=True,
    partitioner=partitioner,
) as cluster:
    def burst():
        for name in cluster.query_names():
            for root in cluster.root_candidates(name):
                result = cluster.serve_root(name, root)
                transcript.append(
                    [name, root, result.embeddings, result.hops,
                     result.border_expansions, cluster.last_cached]
                )
    for chunk in batched(events, 37):
        cluster.ingest(chunk)
        burst()
    cluster.finalize()
    burst()
    cache = {"hits": 0, "misses": 0, "entries": 0, "invalidations": 0}
    for shard in cluster.shard_stats():
        for key in cache:
            cache[key] += shard.cache_stats[key]
    hop_messages = cluster.hop_messages_sent

print(json.dumps({
    "transcript": transcript,
    "cache": cache,
    "hop_messages": hop_messages,
}))
"""


def _run_live_pipeline(num_shards: int, hashseed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", LIVE_PIPELINE, str(num_shards)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_live_serving_invariant_under_hashseed(num_shards):
    """Interleaved ingest/serve double-runs in fresh interpreters under
    different hash seeds: every answer, hop count, cache flag, summed
    cache statistic and hop-message count must agree bit for bit."""
    runs = [_run_live_pipeline(num_shards, seed) for seed in (1, 4242)]
    assert runs[0]["transcript"] == runs[1]["transcript"]
    assert runs[0]["cache"] == runs[1]["cache"]
    assert runs[0]["hop_messages"] == runs[1]["hop_messages"]
    assert runs[0]["transcript"], "the burst actually served something"


def test_live_serving_invariant_across_shard_counts():
    """The lock-step transcript is also identical across shard counts —
    the distributed DFS answers exactly what one process would."""
    one = _run_live_pipeline(1, hashseed=7)
    four = _run_live_pipeline(4, hashseed=7)
    assert one["transcript"] == four["transcript"]
    assert one["cache"] == four["cache"]
    assert one["hop_messages"] == 0  # one shard owns every partition
