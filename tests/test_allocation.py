"""Tests for equal-opportunism allocation (Sec. 4, Eqs. 1-3).

The auction consumes id-based matches; tests intern vertices through the
state under test so match ids index its assignment vector, exactly as the
matcher-sharing Loom pipeline does.
"""

import pytest

from repro.core.allocation import EqualOpportunism
from repro.core.matching import Match
from repro.graph.interning import pack_edge
from repro.partitioning.state import PartitionState


@pytest.fixture
def ab_node(fig1_index):
    return fig1_index.single_edge_motif("a", "b")


@pytest.fixture
def abc_node(fig1_trie):
    from repro.query.pattern import path_pattern

    return fig1_trie.node_for_graph(path_pattern(["a", "b", "c"]))


def id_match(state: PartitionState, node, *pairs) -> Match:
    """A match over ``pairs`` of vertex objects, interned into ``state``.

    The auction reads only ``vertices``/``edges``/``support`` from a match;
    the plan state id is irrelevant here, so the trie node's own id stands
    in for it and the node's support is denormalised as the matcher does.
    """
    return Match(
        frozenset(pack_edge(state.intern(u), state.intern(v)) for u, v in pairs),
        node.node_id,
        node.support,
    )


def single_match(state, node, u=1, v=2) -> Match:
    return id_match(state, node, (u, v))


class TestRation:
    def test_smallest_partition_gets_full_ration(self, ab_node):
        state = PartitionState(2, 100)
        eo = EqualOpportunism(state)
        assert eo.ration(0) == 1.0
        assert eo.ration(1) == 1.0

    def test_paper_worked_example(self, ab_node):
        """Sec. 4's example: S1 33.3% larger than S2 => l(S1) = 1/2."""
        state = PartitionState(2, 1000)
        for v in range(40):
            state.assign(("s1", v), 0)
        for v in range(30):
            state.assign(("s2", v), 1)
        eo = EqualOpportunism(state, alpha=2.0 / 3.0)
        assert eo.ration(0) == pytest.approx(0.5)
        assert eo.ration(1) == 1.0

    def test_full_partition_rations_to_zero(self, ab_node):
        state = PartitionState(2, 4)
        for v in range(4):
            state.assign(v, 0)
        eo = EqualOpportunism(state)
        assert eo.ration(0) == 0.0

    def test_rationing_disabled(self, ab_node):
        state = PartitionState(2, 1000)
        for v in range(40):
            state.assign(v, 0)
        eo = EqualOpportunism(state, rationing_enabled=False)
        assert eo.ration(0) == 1.0

    def test_alpha_validation(self):
        state = PartitionState(2, 10)
        with pytest.raises(ValueError):
            EqualOpportunism(state, alpha=0.0)
        with pytest.raises(ValueError):
            EqualOpportunism(state, balance_cap=0.9)


class TestBid:
    def test_bid_formula(self, ab_node):
        """bid = N(Si, Ek) * (1 - |V(Si)|/C) * supp(mk) — Eq. 1."""
        state = PartitionState(2, 10)
        state.assign(1, 0)
        eo = EqualOpportunism(state)
        match = single_match(state, ab_node)  # vertices {1, 2}, support 1.0
        expected = 1 * (1 - 1 / 10) * 1.0
        assert eo.bid(0, match) == pytest.approx(expected)

    def test_bid_zero_without_overlap(self, ab_node):
        state = PartitionState(2, 10)
        eo = EqualOpportunism(state)
        assert eo.bid(0, single_match(state, ab_node)) == 0.0

    def test_support_weighting_off(self, abc_node):
        state = PartitionState(2, 10)
        state.assign(1, 0)
        match = id_match(state, abc_node, (1, 2), (2, 3))
        on = EqualOpportunism(state, support_weighting=True).bid(0, match)
        off = EqualOpportunism(state, support_weighting=False).bid(0, match)
        assert on == pytest.approx(off * abc_node.support)

    def test_neighbor_aware_bid_counts_adjacency(self, ab_node):
        state = PartitionState(2, 10)
        state.assign(99, 0)  # a neighbour of vertex 1, already placed
        adj = {1: {99}, 2: set()}
        eo = EqualOpportunism(state, neighbor_fn=lambda v: adj.get(v, ()))
        match = single_match(state, ab_node)
        assert eo.bid(0, match) > 0.0

    def test_neighbor_ids_fn_counts_adjacency(self, ab_node):
        """The id-keyed twin of the neighbour-aware bid (Loom's path)."""
        state = PartitionState(2, 10)
        state.assign(99, 0)
        nid = state.interner.id_of(99)
        match = single_match(state, ab_node)
        uid = state.interner.id_of(1)
        adj = {uid: {nid}}
        eo = EqualOpportunism(state, neighbor_ids_fn=lambda vid: adj.get(vid, ()))
        assert eo.bid(0, match) > 0.0


class TestAllocate:
    def test_winner_takes_overlapping_cluster(self, ab_node, abc_node):
        state = PartitionState(2, 100)
        state.assign(2, 0)  # vertex 2 already in partition 0
        eo = EqualOpportunism(state)
        m1 = single_match(state, ab_node, 1, 2)
        m2 = id_match(state, abc_node, (1, 2), (2, 3))
        decision = eo.allocate([m1, m2])
        assert decision.winner == 0
        assert not decision.fallback
        assert state.partition_of(1) == 0
        assert state.partition_of(3) == 0

    def test_all_vertices_of_prefix_assigned(self, ab_node):
        state = PartitionState(2, 100)
        eo = EqualOpportunism(state)
        decision = eo.allocate([single_match(state, ab_node, 5, 6)])
        assert decision.assigned_vertices == {
            state.interner.id_of(5),
            state.interner.id_of(6),
        }
        assert state.partition_of(5) == state.partition_of(6)

    def test_fallback_when_no_overlap(self, ab_node):
        state = PartitionState(2, 100)
        eo = EqualOpportunism(state)
        decision = eo.allocate([single_match(state, ab_node)])
        assert decision.fallback

    def test_fallback_chooser_used(self, ab_node):
        state = PartitionState(4, 100)
        eo = EqualOpportunism(state)
        decision = eo.allocate(
            [single_match(state, ab_node)], fallback_chooser=lambda ids: 3
        )
        assert decision.winner == 3
        assert state.partition_of(1) == 3

    def test_fallback_chooser_receives_cluster_ids(self, ab_node):
        state = PartitionState(4, 100)
        eo = EqualOpportunism(state)
        seen = {}

        def chooser(ids):
            seen["ids"] = set(ids)
            return 0

        decision = eo.allocate([single_match(state, ab_node)], fallback_chooser=chooser)
        assert seen["ids"] == {state.interner.id_of(1), state.interner.id_of(2)}
        assert decision.winner == 0

    def test_fallback_prefers_least_loaded(self, ab_node):
        state = PartitionState(2, 100)
        state.assign(("pad", 0), 0)
        state.assign(("pad", 1), 0)
        eo = EqualOpportunism(state)
        decision = eo.allocate([single_match(state, ab_node)])
        assert decision.winner == 1

    def test_empty_cluster_rejected(self, ab_node):
        eo = EqualOpportunism(PartitionState(2, 10))
        with pytest.raises(ValueError):
            eo.allocate([])

    def test_at_least_one_match_assigned(self, ab_node):
        """Even a fully-rationed winner takes the evicted edge's match."""
        state = PartitionState(2, 3)
        state.assign(("pad", 0), 0)
        state.assign(("pad", 1), 0)
        state.assign(("pad", 2), 1)
        eo = EqualOpportunism(state)
        decision = eo.allocate([single_match(state, ab_node)])
        assert len(decision.assigned_matches) == 1

    def test_rationed_winner_takes_prefix_only(self, ab_node, abc_node):
        """A larger partition bids on (and takes) a support-sorted prefix."""
        state = PartitionState(2, 1000)
        for v in range(40):
            state.assign(("s1", v), 0)
        for v in range(30):
            state.assign(("s2", v), 1)
        state.assign(2, 0)  # overlap pulls toward partition 0 (the larger)
        eo = EqualOpportunism(state)
        m1 = single_match(state, ab_node, 1, 2)
        m2 = id_match(state, abc_node, (1, 2), (2, 3))
        m3 = id_match(state, abc_node, (1, 2), (2, 4))
        m4 = id_match(state, abc_node, (1, 2), (2, 5))
        decision = eo.allocate([m1, m2, m3, m4])
        assert decision.winner == 0
        # l(S0) = 0.5 => ceil(0.5 * 4) = 2 matches taken, not all 4.
        assert len(decision.assigned_matches) == 2
        assert not state.is_assigned(5)

    def test_tie_goes_to_smaller_partition(self, ab_node):
        state = PartitionState(2, 100)
        state.assign(("pad", 0), 0)  # partition 0 bigger, no overlap anywhere
        eo = EqualOpportunism(state)
        decision = eo.allocate([single_match(state, ab_node)])
        assert decision.winner == 1
