"""Cache correctness under streaming: on/off equality, sound invalidation.

The promise under test: after any interleaving of ingest and serve
rounds, a cached engine returns bit-identical results to an uncached one
— which requires invalidation to fire for every cached root a new edge
can affect, whether the edge arrives *inside* a partition or *across* the
border.
"""

import pytest

from helpers import make_random_labelled_graph

from repro.graph.labelled_graph import LabelledGraph
from repro.graph.stream import EdgeEvent, batched, stream_edges
from repro.partitioning import registry
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.registry import BUILTIN_SYSTEMS
from repro.partitioning.state import PartitionState
from repro.query.pattern import cycle_pattern, path_pattern
from repro.query.workload import Workload
from repro.serving import ServingEngine


class _ScriptedPartitioner(StreamingPartitioner):
    """Places vertices by a fixed map — lets a test choose exactly which
    arrivals are intra-partition and which cross the border."""

    name = "scripted"

    def __init__(self, state, placement):
        super().__init__(state)
        self._placement = placement

    def ingest(self, event):
        for v in event.endpoints():
            if not self.state.is_assigned(v):
                self.state.assign(v, self._placement[v])


def _workload():
    return Workload(
        [
            (path_pattern(["a", "b", "c"], name="abc"), 0.6),
            (cycle_pattern(["a", "b", "a", "b"], name="abab"), 0.4),
        ],
        name="cache-test",
    )


def _serve_everything(engine):
    """Every (query, root) result currently servable, as comparable data."""
    out = []
    for name in engine.query_names():
        for root in engine.root_candidates(name):
            result = engine.serve_root(name, root)
            out.append((name, root, result.embeddings, result.hops))
    return out


@pytest.mark.parametrize("system", BUILTIN_SYSTEMS)
def test_interleaved_ingest_serve_identical_with_and_without_cache(system):
    """The satellite's acceptance: serve → ingest → serve … rounds produce
    bit-identical results cached and uncached, for all four partitioners."""
    full = make_random_labelled_graph(50, 110, seed=5)
    workload = _workload()
    events = list(stream_edges(full, "random", seed=1))

    transcripts = {}
    for cached in (True, False):
        state = PartitionState.for_graph(4, full.num_vertices)
        partitioner = registry.create(
            system, state, graph=full, workload=workload, window_size=20, seed=0
        )
        engine = ServingEngine(
            LabelledGraph("live"), state, workload, cache=cached, partitioner=partitioner
        )
        transcript = []
        for chunk in batched(events, 23):
            engine.ingest(chunk)
            transcript.append(_serve_everything(engine))
            # Re-serve immediately: with the cache on this round is pure
            # hits and must still agree.
            transcript.append(_serve_everything(engine))
        engine.finalize()
        transcript.append(_serve_everything(engine))
        transcripts[cached] = transcript
        if cached:
            assert engine.cache.hits > 0
            assert engine.cache.invalidations > 0  # streaming really invalidated
    assert transcripts[True] == transcripts[False]


@pytest.mark.parametrize("cached", [True, False])
def test_interleaved_live_cluster_matches_engine(cached):
    """The live cluster's shard-local caches obey the same contract: the
    interleaved transcript is bit-identical to the single-process engine's,
    cache on or off — the distributed invalidation wave never misses a root
    and never fires spuriously (summed shard stats equal the engine's)."""
    from repro.runtime.live import LiveCluster

    full = make_random_labelled_graph(50, 110, seed=5)
    workload = _workload()
    events = list(stream_edges(full, "random", seed=1))

    def run(make_server):
        state = PartitionState.for_graph(4, full.num_vertices)
        partitioner = registry.create(
            "loom", state, graph=full, workload=workload, window_size=20, seed=0
        )
        server, cleanup = make_server(state, partitioner)
        try:
            transcript = []
            for chunk in batched(events, 23):
                server.ingest(chunk)
                transcript.append(_serve_everything(server))
                transcript.append(_serve_everything(server))  # hit round
            server.finalize()
            transcript.append(_serve_everything(server))
            totals = None
            if cached:
                totals = {"hits": 0, "misses": 0, "invalidations": 0}
                if hasattr(server, "shard_stats"):  # a cluster: sum the shards
                    for shard in server.shard_stats():
                        for key in totals:
                            totals[key] += shard.cache_stats[key]
                else:
                    cache = server.cache
                    totals = {
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "invalidations": cache.invalidations,
                    }
            return transcript, totals
        finally:
            cleanup()

    def make_engine(state, partitioner):
        engine = ServingEngine(
            LabelledGraph("live"), state, workload, cache=cached, partitioner=partitioner
        )
        return engine, lambda: None

    def make_cluster(state, partitioner):
        cluster = LiveCluster(
            LabelledGraph("live"),
            state,
            workload,
            num_shards=2,
            cache=cached,
            partitioner=partitioner,
        )
        return cluster, cluster.close

    engine_transcript, engine_totals = run(make_engine)
    cluster_transcript, cluster_totals = run(make_cluster)
    assert cluster_transcript == engine_transcript
    if cached:
        assert cluster_totals == engine_totals
        assert cluster_totals["hits"] > 0 and cluster_totals["invalidations"] > 0


def _fresh_engine_for(workload, placement, k=2):
    state = PartitionState.for_graph(k, 8)
    partitioner = _ScriptedPartitioner(state, placement)
    engine = ServingEngine(
        LabelledGraph("live"), state, workload, cache=True, partitioner=partitioner
    )
    return engine


class TestTargetedInvalidation:
    """Pinpoint the two arrival kinds the satellite names."""

    def _run(self, third_vertex_partition):
        # 'abc' roots at its b-labelled middle slot (rarest label, highest
        # degree), so the cached root is vertex 2 itself.  All three query
        # labels are present from the start, keeping the compiled plan
        # fixed across the later arrival — the entry must fall to the
        # radius rule, not to a plan recompile.
        workload = Workload([(path_pattern(["a", "b", "c"], name="abc"), 1.0)], name="t")
        placement = {1: 0, 2: 0, 3: third_vertex_partition, 4: 1}
        engine = _fresh_engine_for(workload, placement)
        engine.ingest([EdgeEvent(1, "a", 2, "b"), EdgeEvent(3, "c", 4, "a")])
        root = engine.state.interner.id_of(2)
        before = engine.serve_root("abc", root)
        assert before.num_embeddings == 0
        assert ("abc", root) in engine.cache
        invalidations_before = engine.cache.invalidations
        # The completing edge arrives: intra-partition when 3 shares
        # partition 0 with the root, border when it lives in partition 1.
        engine.ingest([EdgeEvent(2, "b", 3, "c")])
        assert engine.cache.invalidations > invalidations_before
        after = engine.serve_root("abc", root)
        assert after.num_embeddings == 1
        expected_hops = 0 if third_vertex_partition == 0 else 1
        assert after.hops == expected_hops
        # Equality with a cache-off engine over the same final state.
        uncached = ServingEngine(engine.graph, engine.state, workload, cache=None)
        reference = uncached.serve_root("abc", root)
        assert (after.embeddings, after.hops) == (
            reference.embeddings,
            reference.hops,
        )

    def test_intra_partition_arrival_invalidates(self):
        self._run(third_vertex_partition=0)

    def test_border_arrival_invalidates(self):
        self._run(third_vertex_partition=1)

    def test_untouched_roots_stay_cached(self):
        """Invalidation is targeted: roots farther than the query radius
        from a new edge keep their entries."""
        workload = Workload([(path_pattern(["a", "b"], name="ab"), 1.0)], name="t")
        placement = {1: 0, 2: 0, 10: 1, 11: 1, 20: 0, 21: 1}
        engine = _fresh_engine_for(workload, placement)
        engine.ingest([EdgeEvent(1, "a", 2, "b"), EdgeEvent(10, "a", 11, "b")])
        for root_vertex in (1, 10):
            engine.serve_root("ab", engine.state.interner.id_of(root_vertex))
        entries_before = set(engine.cache._entries)
        # A far-away edge (a fresh component) cannot affect roots 1 or 10.
        engine.ingest([EdgeEvent(20, "a", 21, "b")])
        assert entries_before <= set(engine.cache._entries)


def test_plan_change_drops_query_entries():
    """Graph growth that re-roots a plan drops that query's cache rather
    than serving entries whose root slot means something else now."""
    workload = Workload([(path_pattern(["a", "b"], name="ab"), 1.0)], name="t")
    placement = {i: 0 for i in range(1, 10)}
    engine = _fresh_engine_for(workload, placement)
    # One a, one b: labels tie, plan roots at the pattern's 'a' slot.
    engine.ingest([EdgeEvent(1, "a", 2, "b")])
    root = engine.state.interner.id_of(1)
    engine.serve_root("ab", root)
    assert len(engine.cache._entries) == 1
    # Flood with 'a' vertices: 'b' becomes the rarest label and the plan
    # re-roots; the old 'a'-rooted entries must not survive.
    engine.ingest(
        [EdgeEvent(3, "a", 4, "a"), EdgeEvent(5, "a", 6, "a"), EdgeEvent(2, "b", 7, "a")]
    )
    assert ("ab", root) not in engine.cache._entries
    # And the served answers still match an uncached engine.
    uncached = ServingEngine(engine.graph, engine.state, workload, cache=None)
    for name in engine.query_names():
        for r in engine.root_candidates(name):
            cached_result = engine.serve_root(name, r)
            fresh = uncached.serve_root(name, r)
            assert (cached_result.embeddings, cached_result.hops) == (
                fresh.embeddings,
                fresh.hops,
            )
