"""Unit and property tests for graph streams and their orderings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.labelled_graph import normalize_edge
from repro.graph.stream import (
    EdgeEvent,
    StreamOrder,
    bfs_stream,
    dfs_stream,
    random_stream,
    stream_edges,
    stream_prefix,
    stream_to_graph,
)

from helpers import make_random_labelled_graph


class TestEdgeEvent:
    def test_edge_is_normalized(self):
        ev = EdgeEvent(5, "a", 2, "b")
        assert ev.edge == normalize_edge(2, 5)

    def test_label_of(self):
        ev = EdgeEvent(1, "a", 2, "b")
        assert ev.label_of(1) == "a"
        assert ev.label_of(2) == "b"
        with pytest.raises(KeyError):
            ev.label_of(3)

    def test_label_pair_sorted(self):
        assert EdgeEvent(1, "z", 2, "a").label_pair() == ("a", "z")


@pytest.mark.parametrize("order", ["bfs", "dfs", "random"])
class TestOrderings:
    def test_every_edge_exactly_once(self, order, random_graph):
        events = list(stream_edges(random_graph, order, seed=3))
        edges = [ev.edge for ev in events]
        assert len(edges) == random_graph.num_edges
        assert set(edges) == set(random_graph.edges())

    def test_labels_match_graph(self, order, random_graph):
        for ev in stream_edges(random_graph, order, seed=1):
            assert ev.u_label == random_graph.label(ev.u)
            assert ev.v_label == random_graph.label(ev.v)

    def test_deterministic_for_seed(self, order, random_graph):
        a = [ev.edge for ev in stream_edges(random_graph, order, seed=9)]
        b = [ev.edge for ev in stream_edges(random_graph, order, seed=9)]
        assert a == b

    def test_covers_disconnected_components(self, order):
        from repro.graph.labelled_graph import LabelledGraph

        g = LabelledGraph.from_label_map(
            {1: "a", 2: "b", 3: "a", 4: "b"}, [(1, 2), (3, 4)]
        )
        events = list(stream_edges(g, order, seed=0))
        assert {ev.edge for ev in events} == set(g.edges())


class TestOrderCharacter:
    def test_bfs_has_locality(self, random_graph):
        """In a BFS stream, consecutive edges should frequently share
        endpoints — the locality property Sec. 5.3 relies on."""
        events = list(bfs_stream(random_graph, seed=0))
        shared = sum(
            1
            for a, b in zip(events, events[1:])
            if {a.u, a.v} & {b.u, b.v}
        )
        assert shared / len(events) > 0.15

    def test_random_differs_from_bfs(self, random_graph):
        bfs = [ev.edge for ev in bfs_stream(random_graph, seed=0)]
        rnd = [ev.edge for ev in random_stream(random_graph, seed=0)]
        assert bfs != rnd

    def test_different_seeds_shuffle_random_order(self, random_graph):
        a = [ev.edge for ev in random_stream(random_graph, seed=1)]
        b = [ev.edge for ev in random_stream(random_graph, seed=2)]
        assert a != b
        assert sorted(a) == sorted(b)

    def test_dfs_differs_from_bfs_on_nontrivial_graph(self, random_graph):
        bfs = [ev.edge for ev in bfs_stream(random_graph, seed=0)]
        dfs = [ev.edge for ev in dfs_stream(random_graph, seed=0)]
        assert bfs != dfs


class TestStreamOrderEnum:
    def test_accepts_string_aliases(self, random_graph):
        a = [ev.edge for ev in stream_edges(random_graph, "bfs", seed=4)]
        b = [ev.edge for ev in stream_edges(random_graph, StreamOrder.BREADTH_FIRST, seed=4)]
        assert a == b

    def test_unknown_order_raises(self, random_graph):
        with pytest.raises(ValueError):
            stream_edges(random_graph, "sideways")


class TestRoundTrip:
    def test_stream_to_graph_reconstructs(self, random_graph):
        rebuilt = stream_to_graph(stream_edges(random_graph, "random", seed=5))
        assert rebuilt.num_vertices == random_graph.num_vertices
        assert set(rebuilt.edges()) == set(random_graph.edges())
        assert rebuilt.labels() == random_graph.labels()

    def test_stream_prefix(self, random_graph):
        events = stream_prefix(stream_edges(random_graph, "bfs", seed=0), 10)
        assert len(events) == 10

    def test_stream_prefix_short_stream(self, random_graph):
        events = stream_prefix(stream_edges(random_graph, "bfs", seed=0), 10**9)
        assert len(events) == random_graph.num_edges

    def test_stream_prefix_zero_is_empty(self, random_graph):
        """Regression: n=0 used to return one event (the length check ran
        after the append)."""
        stream = stream_edges(random_graph, "bfs", seed=0)
        assert stream_prefix(stream, 0) == []
        # The underlying stream was not consumed past the guard.
        assert len(list(stream)) == random_graph.num_edges

    def test_stream_prefix_negative_is_empty(self, random_graph):
        assert stream_prefix(stream_edges(random_graph, "bfs", seed=0), -3) == []


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    order=st.sampled_from(["bfs", "dfs", "random"]),
    n=st.integers(5, 40),
)
def test_property_stream_is_edge_permutation(seed, order, n):
    g = make_random_labelled_graph(num_vertices=n, num_edges=min(2 * n, n * (n - 1) // 2), seed=seed)
    edges = [ev.edge for ev in stream_edges(g, order, seed=seed)]
    assert sorted(edges, key=repr) == sorted(g.edges(), key=repr)
