"""The experiment service: spec expansion, runner, results DB, gate.

Covers the runner contract end to end: deterministic matrix expansion,
resume-skips-completed-trials, failed-trial isolation (a crashing trial
records a failed row and the run continues), the append-only SQLite
round-trip, and a reduced-scale run of real bench trials in parallel
workers.  The gate tests replay the committed ``BENCH_*.json`` payloads
through the DB and assert ``experiment gate`` reproduces today's four
``check_regression.py`` verdicts — and fails on an injected slowdown.
"""

import json
from pathlib import Path

import pytest

from repro.experiment import (
    ExperimentSpec,
    ResultsDB,
    run_experiment,
)
from repro.experiment.db import flatten_metrics, gain_metrics
from repro.experiment.gate import gate_experiment, load_spec_for_gate
from repro.experiment.spec import SpecError, derive_seed, load_spec

REPO = Path(__file__).resolve().parent.parent


def synthetic_spec(trials, name="synthetic-test", seed=0):
    return ExperimentSpec.from_mapping(
        {"experiment": {"name": name, "seed": seed}, "trial": trials}
    )


class TestSpecExpansion:
    def test_matrix_times_repeats(self):
        spec = synthetic_spec(
            [
                {
                    "bench": "synthetic",
                    "repeats": 2,
                    "matrix": {"k": [2, 3], "window": [10]},
                }
            ]
        )
        assert [t.trial_id for t in spec.trials] == [
            "synthetic[k=2,window=10]#r1",
            "synthetic[k=2,window=10]#r2",
            "synthetic[k=3,window=10]#r1",
            "synthetic[k=3,window=10]#r2",
        ]
        # Repeats of one group share params and seed (same workload,
        # independent timings).
        first, second = spec.trials[0], spec.trials[1]
        assert first.group == second.group
        assert first.seed == second.seed
        assert first.params == {"k": 2, "window": 10}

    def test_expansion_is_deterministic(self):
        table = {
            "bench": "synthetic",
            "repeats": 3,
            "matrix": {"k": [2, 3, 4], "cache": [True, False]},
        }
        a = synthetic_spec([table])
        b = synthetic_spec([table])
        assert [(t.trial_id, t.seed) for t in a.trials] == [
            (t.trial_id, t.seed) for t in b.trials
        ]
        assert a.spec_hash == b.spec_hash

    def test_seeds_derive_from_group_not_rng(self):
        spec = synthetic_spec([{"bench": "synthetic", "matrix": {"k": [2, 3]}}])
        seeds = {t.trial_id: t.seed for t in spec.trials}
        assert seeds["synthetic[k=2]"] == derive_seed(0, "synthetic[k=2]")
        assert seeds["synthetic[k=2]"] != seeds["synthetic[k=3]"]

    def test_explicit_seed_wins(self):
        spec = synthetic_spec([{"bench": "synthetic", "params": {"seed": 7}}])
        assert spec.trials[0].seed == 7

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            synthetic_spec([{"bench": "synthetic", "threads": 4}])

    def test_duplicate_trial_id_rejected(self):
        with pytest.raises(SpecError, match="duplicate trial id"):
            synthetic_spec([{"bench": "synthetic"}, {"bench": "synthetic"}])

    def test_json_round_trip(self):
        spec = synthetic_spec(
            [
                {
                    "bench": "synthetic",
                    "matrix": {"k": [2, 3]},
                    "gate": {"threshold": 0.6, "strict": True},
                }
            ]
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_committed_specs_parse(self):
        for name in ("ci-smoke.toml", "ci-baseline.toml", "nightly.toml"):
            spec, modules = load_spec(REPO / "experiments" / name)
            assert spec.trials, name
            assert all(Path(m).exists() for m in modules if m.endswith(".py"))


class TestResultsDB:
    def test_trial_metrics_round_trip(self, tmp_path):
        with ResultsDB(tmp_path / "r.db") as db:
            exp = db.ensure_experiment("t", "hash", "{}")
            row = db.record_trial(
                exp,
                trial_id="a",
                bench="synthetic",
                params={"k": 2},
                seed=5,
                status="ok",
                duration_seconds=0.5,
                metrics={"edges_per_sec": 10.5, "note": "text", "flag": 1.0},
            )
            metrics = db.metrics_for(row)
            assert metrics == {"edges_per_sec": 10.5, "note": "text", "flag": 1.0}
            trial = db.latest_trials(exp)[0]
            assert json.loads(trial["params_json"]) == {"k": 2}
            assert trial["seed"] == 5

    def test_append_only_latest_row_wins(self, tmp_path):
        with ResultsDB(tmp_path / "r.db") as db:
            exp = db.ensure_experiment("t", "hash", "{}")
            db.record_trial(
                exp,
                trial_id="a",
                bench="synthetic",
                params={},
                seed=0,
                status="failed",
                duration_seconds=0.0,
                metrics={},
                traceback_text="boom",
            )
            assert db.completed_trial_ids(exp) == set()
            db.record_trial(
                exp,
                trial_id="a",
                bench="synthetic",
                params={},
                seed=0,
                status="ok",
                duration_seconds=0.1,
                metrics={},
            )
            assert db.completed_trial_ids(exp) == {"a"}
            rows = db.latest_trials(exp)
            assert len(rows) == 1 and rows[0]["status"] == "ok"

    def test_experiment_reused_for_same_spec_hash(self, tmp_path):
        with ResultsDB(tmp_path / "r.db") as db:
            first = db.ensure_experiment("t", "hash", "{}")
            assert db.ensure_experiment("t", "hash", "{}") == first
            assert db.ensure_experiment("t", "hash2", "{}") != first

    def test_flatten_metrics_shapes(self):
        flat = flatten_metrics(
            {
                "loom": {"s1": {"rate": 10, "ok": True}},
                "note": "hi",
                "seq": [1, 2],
                "skip": None,
            }
        )
        assert flat == {
            "loom.s1.rate": 10.0,
            "loom.s1.ok": 1.0,
            "note": "hi",
            "seq": "[1, 2]",
        }

    def test_gain_metrics_filter(self):
        gains = gain_metrics({"a.gain_vs_baseline": 0.9, "a.rate": 10.0, "b": "x"})
        assert gains == {"a.gain_vs_baseline": 0.9}


class TestRunner:
    def test_synthetic_run_and_resume(self, tmp_path):
        spec = synthetic_spec(
            [{"bench": "synthetic", "repeats": 2, "matrix": {"k": [2, 3]}}]
        )
        db_path = str(tmp_path / "r.db")
        first = run_experiment(spec, db_path, workers=1, echo=lambda _: None)
        assert (first.executed, first.skipped, first.failed) == (4, 0, 0)
        # Resume: every trial's latest row is ok, so nothing reruns.
        second = run_experiment(spec, db_path, workers=1, echo=lambda _: None)
        assert (second.executed, second.skipped, second.failed) == (0, 4, 0)
        with ResultsDB(db_path) as db:
            rows = db.latest_trials(first.experiment_id)
            assert len(rows) == 4
            for row in rows:
                metrics = db.metrics_for(row["id"])
                assert metrics["seed"] == float(row["seed"])

    def test_failed_trial_isolation(self, tmp_path):
        spec = synthetic_spec(
            [
                {"bench": "synthetic", "id": "boom", "params": {"fail": True}},
                {"bench": "synthetic", "id": "fine"},
            ]
        )
        db_path = str(tmp_path / "r.db")
        summary = run_experiment(spec, db_path, workers=1, echo=lambda _: None)
        # The crash is one failed row; the run continued to the next trial.
        assert (summary.executed, summary.failed) == (2, 1)
        with ResultsDB(db_path) as db:
            rows = {r["trial_id"]: r for r in db.latest_trials(summary.experiment_id)}
            assert rows["fine"]["status"] == "ok"
            assert rows["boom"]["status"] == "failed"
            assert "asked to fail" in rows["boom"]["traceback"]
            # A failed trial fails the gate with a nonzero exit.
            assert gate_experiment(db, spec, echo=lambda _: None) == 1
        # Rerunning retries the failure (it is not in the resume skip set).
        retry = run_experiment(spec, db_path, workers=1, echo=lambda _: None)
        assert (retry.executed, retry.skipped, retry.failed) == (1, 1, 1)

    def test_parallel_workers(self, tmp_path):
        spec = synthetic_spec(
            [{"bench": "synthetic", "matrix": {"k": [1, 2, 3, 4]}}]
        )
        summary = run_experiment(
            spec, str(tmp_path / "r.db"), workers=2, echo=lambda _: None
        )
        assert (summary.executed, summary.failed) == (4, 0)

    def test_parallel_failed_trial_isolation(self, tmp_path):
        spec = synthetic_spec(
            [
                {"bench": "synthetic", "id": "boom", "params": {"fail": True}},
                {"bench": "synthetic", "id": "fine-1"},
                {"bench": "synthetic", "id": "fine-2"},
            ]
        )
        db_path = str(tmp_path / "r.db")
        summary = run_experiment(spec, db_path, workers=2, echo=lambda _: None)
        assert (summary.executed, summary.failed) == (3, 1)
        with ResultsDB(db_path) as db:
            rows = {r["trial_id"]: r for r in db.latest_trials(summary.experiment_id)}
            assert rows["boom"]["status"] == "failed"
            assert rows["fine-1"]["status"] == "ok"
            assert rows["fine-2"]["status"] == "ok"

    def test_spec_workers_pin_respected(self, tmp_path):
        spec = ExperimentSpec.from_mapping(
            {
                "experiment": {"name": "pin", "workers": 1},
                "trial": [{"bench": "synthetic"}],
            }
        )
        assert spec.workers == 1
        summary = run_experiment(spec, str(tmp_path / "r.db"), echo=lambda _: None)
        assert summary.ok


#: (committed payload, today's check_regression threshold / strictness).
COMMITTED_GATES = [
    ("BENCH_throughput.json", {"threshold": 0.85, "strict": True}),
    ("BENCH_matcher.json", {"threshold": 0.85, "strict": True}),
    ("BENCH_scaling.json", {"threshold": 0.6}),
    ("BENCH_serving.json", {"threshold": 0.6, "strict": True}),
]


def replay_committed_payloads(db_path, scale_gain=None):
    """A DB whose trial rows are the committed BENCH_*.json results."""
    spec = synthetic_spec(
        [
            {"bench": "synthetic", "id": Path(name).stem, "gate": gate}
            for name, gate in COMMITTED_GATES
        ],
        name="committed-replay",
    )
    with ResultsDB(db_path) as db:
        exp = db.ensure_experiment(spec.name, spec.spec_hash, spec.to_json())
        for name, _ in COMMITTED_GATES:
            payload = json.loads((REPO / name).read_text())
            metrics = flatten_metrics(payload.get("results", {}))
            if scale_gain:
                target, factor = scale_gain
                for key in list(metrics):
                    if key.endswith("gain_vs_baseline") and target in (Path(name).stem, key):
                        metrics[key] = metrics[key] * factor
            db.record_trial(
                exp,
                trial_id=Path(name).stem,
                bench="synthetic",
                params={},
                seed=0,
                status="ok",
                duration_seconds=0.0,
                metrics=metrics,
            )
    return spec


class TestGateOnCommittedBaselines:
    def test_reproduces_check_regression_verdicts(self, tmp_path):
        """Acceptance case: the committed payloads pass all four of
        today's check_regression invocations, so the DB gate passes too."""
        db_path = str(tmp_path / "r.db")
        spec = replay_committed_payloads(db_path)
        with ResultsDB(db_path) as db:
            assert gate_experiment(db, spec, echo=lambda _: None) == 0

    def test_fails_on_injected_slowdown(self, tmp_path):
        db_path = str(tmp_path / "r.db")
        spec = replay_committed_payloads(
            db_path, scale_gain=("BENCH_throughput", 0.1)
        )
        lines = []
        with ResultsDB(db_path) as db:
            assert gate_experiment(db, spec, echo=lines.append) == 1
        assert any("REGRESSION" in line for line in lines)

    def test_strict_trial_with_no_gains_fails(self, tmp_path):
        spec = synthetic_spec(
            [{"bench": "synthetic", "gate": {"strict": True}}], name="strict-test"
        )
        db_path = str(tmp_path / "r.db")
        run_experiment(spec, db_path, workers=1, echo=lambda _: None)
        with ResultsDB(db_path) as db:
            assert gate_experiment(db, spec, echo=lambda _: None) == 1

    def test_gate_spec_from_db_json(self, tmp_path):
        """`gate --db results.db` alone: the spec comes back out of the DB."""
        db_path = str(tmp_path / "r.db")
        spec = replay_committed_payloads(db_path)
        with ResultsDB(db_path) as db:
            recovered = load_spec_for_gate(db)
            assert recovered == spec
            assert gate_experiment(db, recovered, echo=lambda _: None) == 0


class TestEndToEndBenchTrials:
    def test_reduced_scale_spec_run(self, tmp_path):
        """Real bench trials (matcher + throughput) through parallel
        workers, persisted to SQLite, and gated."""
        spec = ExperimentSpec.from_mapping(
            {
                "experiment": {
                    "name": "e2e-smoke",
                    "seed": 0,
                    "trial_modules": [
                        str(REPO / "benchmarks" / "bench_matcher.py"),
                        str(REPO / "benchmarks" / "bench_throughput.py"),
                    ],
                },
                "trial": [
                    {
                        "bench": "matcher",
                        "params": {
                            "edges": 1500,
                            "vertices": 300,
                            "window": 300,
                            "repeats": 1,
                            "seed": 0,
                        },
                    },
                    {
                        "bench": "throughput",
                        "params": {
                            "edges": 3000,
                            "vertices": 600,
                            "loom_edges": 1000,
                            "loom_window": 200,
                            "repeats": 1,
                            "seed": 0,
                        },
                    },
                ],
            }
        )
        db_path = str(tmp_path / "r.db")
        summary = run_experiment(spec, db_path, workers=2, echo=lambda _: None)
        assert (summary.executed, summary.failed) == (2, 0)
        with ResultsDB(db_path) as db:
            rows = {r["trial_id"]: r for r in db.latest_trials(summary.experiment_id)}
            matcher = db.metrics_for(rows["matcher"]["id"])
            assert matcher["edges_per_sec"] > 0
            assert "captured_output" in matcher
            throughput = db.metrics_for(rows["throughput"]["id"])
            assert any(key.endswith(".current_edges_per_sec") for key in throughput)
            # No comparable baseline → nothing gated, non-strict gate passes.
            assert gate_experiment(db, spec, echo=lambda _: None) == 0
