"""Property-style invariants of the array-backed :class:`PartitionState`.

Random assignment sequences are replayed against a naive reference model
(a dict + list-of-sets, the semantics of the seed implementation) and the
two must agree on every query the public API offers.  Error paths
(permanence, range checks) and the interning layer get direct tests.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.interning import VertexInterner
from repro.partitioning.state import UNASSIGNED, PartitionState


class ReferenceModel:
    """The obviously-correct dict/sets model the arrays must match."""

    def __init__(self, k, capacity):
        self.k = k
        self.capacity = float(capacity)
        self.assignment = {}
        self.members = [set() for _ in range(k)]

    def assign(self, v, p):
        self.assignment[v] = p
        self.members[p].add(v)


def _random_vertex(rng):
    kind = rng.randrange(3)
    if kind == 0:
        return rng.randrange(120)
    if kind == 1:
        return f"v{rng.randrange(120)}"
    return ("t", rng.randrange(120))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
def test_state_agrees_with_reference_model(seed, k):
    rng = random.Random(seed)
    capacity = rng.randint(5, 60)
    state = PartitionState(k, capacity)
    model = ReferenceModel(k, capacity)

    for _ in range(rng.randrange(1, 150)):
        v = _random_vertex(rng)
        p = rng.randrange(k)
        if v in model.assignment:
            if model.assignment[v] == p:
                state.assign(v, p)  # same-partition re-assign is a no-op
            else:
                with pytest.raises(ValueError, match="permanent"):
                    state.assign(v, p)
            continue
        state.assign(v, p)
        model.assign(v, p)

    assert state.sizes() == [len(m) for m in model.members]
    assert state.num_assigned == len(model.assignment)
    assert state.assignment() == model.assignment
    assert state.min_size() == min(len(m) for m in model.members)
    assert state.smallest_partition() == state.sizes().index(min(state.sizes()))
    assert state.open_partitions() == [
        i for i in range(k) if len(model.members[i]) < capacity
    ]
    probe = [_random_vertex(rng) for _ in range(30)] + list(model.assignment)[:10]
    for i in range(k):
        assert state.members(i) == model.members[i]
        assert state.size(i) == len(model.members[i])
        assert state.is_full(i) == (len(model.members[i]) >= capacity)
        assert state.residual_capacity(i) == pytest.approx(
            max(0.0, 1.0 - len(model.members[i]) / capacity)
        )
        assert state.count_in_partition(probe, i) == sum(
            1 for v in probe if v in model.members[i]
        )
    for v in probe:
        assert state.partition_of(v) == model.assignment.get(v)
        assert state.is_assigned(v) == (v in model.assignment)
        assert (v in state) == (v in model.assignment)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_id_layer_matches_vertex_layer(seed, k):
    """The *_id twins and the bitsets agree with the vertex-keyed API."""
    rng = random.Random(seed)
    state = PartitionState(k, rng.randint(10, 50))
    vertices = [_random_vertex(rng) for _ in range(80)]
    ids = state.intern_many(vertices)
    assert ids == state.intern_many(vertices)  # interning is idempotent

    for vid in ids:
        if rng.random() < 0.6 and not state.is_assigned_id(vid):
            state.assign_id(vid, rng.randrange(k))

    counts = state.neighbor_partition_counts(set(ids))
    assert sum(counts) == len({i for i in ids if state.is_assigned_id(i)})
    for p in range(k):
        assert counts[p] == state.count_ids_in_partition(set(ids), p)
        assert counts[p] == state.count_in_partition(set(vertices), p)
        for vid, v in zip(ids, vertices):
            assert state.in_partition_id(vid, p) == (state.partition_of(v) == p)
    for vid, v in zip(ids, vertices):
        p = state.partition_of_id(vid)
        assert (None if p == UNASSIGNED else p) == state.partition_of(v)


class TestErrorPaths:
    def test_move_raises_and_leaves_state_intact(self):
        state = PartitionState(3, 10)
        state.assign("v", 1)
        with pytest.raises(ValueError, match="permanent"):
            state.assign("v", 2)
        assert state.partition_of("v") == 1
        assert state.sizes() == [0, 1, 0]

    def test_assign_id_range_checked(self):
        state = PartitionState(2, 10)
        vid = state.intern("v")
        with pytest.raises(IndexError):
            state.assign_id(vid, 2)
        with pytest.raises(IndexError):
            state.assign_id(vid, -1)
        assert not state.is_assigned_id(vid)

    def test_members_range_checked(self):
        with pytest.raises(IndexError):
            PartitionState(2, 10).members(5)

    def test_unknown_ids_are_unassigned(self):
        state = PartitionState(2, 10)
        assert state.partition_of_id(999) == UNASSIGNED
        assert not state.is_assigned_id(999)
        assert state.partition_of("never-seen") is None

    def test_assign_id_grows_vector_for_interner_minted_ids(self):
        """Regression: an id minted through the shared interner directly
        (a matcher built with ``interner=state.interner`` does this) must
        be assignable even though ``state.intern`` never saw it."""
        state = PartitionState(2, 10)
        vid = state.interner.intern("via-matcher")  # bypasses state.intern
        state.assign_id(vid, 1)
        assert state.partition_of("via-matcher") == 1
        with pytest.raises(IndexError, match="never interned"):
            state.assign_id(vid + 1, 0)


class TestInterner:
    def test_dense_first_seen_ids(self):
        interner = VertexInterner()
        assert [interner.intern(v) for v in ("a", "b", "a", "c")] == [0, 1, 0, 2]
        assert interner.vertex(1) == "b"
        assert interner.id_of("c") == 2
        assert interner.id_of("zzz") is None
        assert len(interner) == 3
        assert "b" in interner and "zzz" not in interner
        assert list(interner.vertices()) == ["a", "b", "c"]

    def test_serialization_roundtrip(self):
        interner = VertexInterner()
        interner.intern_many([("x", 1), "y", 7])
        rebuilt = VertexInterner.from_list(interner.to_list())
        assert rebuilt.to_list() == interner.to_list()
        assert rebuilt.id_of("y") == 1

    def test_from_list_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            VertexInterner.from_list(["a", "b", "a"])

    def test_vertex_rejects_negative(self):
        with pytest.raises(IndexError):
            VertexInterner().vertex(-1)

    def test_shared_interner_across_states(self):
        interner = VertexInterner()
        s1 = PartitionState(2, 10, interner=interner)
        s2 = PartitionState(4, 10, interner=interner)
        assert s1.intern("v") == s2.intern("v")
        s1.assign("v", 1)
        assert s2.partition_of("v") is None  # states stay independent

    def test_partitioners_tolerate_interner_ahead_of_state(self):
        """Regression: a shared interner can know ids this state's vector
        hasn't grown to; the partitioner hot paths must not index past it."""
        from repro.graph.stream import EdgeEvent
        from repro.partitioning.fennel import FennelPartitioner
        from repro.partitioning.hash_partitioner import HashPartitioner
        from repro.partitioning.ldg import LDGPartitioner

        for build in (
            lambda s: HashPartitioner(s),
            lambda s: LDGPartitioner(s),
            lambda s: FennelPartitioner(s, 10, 20),
        ):
            interner = VertexInterner()
            other = PartitionState(2, 10, interner=interner)
            other.intern("a")  # grows only `other`'s vector
            state = PartitionState(2, 10, interner=interner)
            build(state).ingest(EdgeEvent("a", "x", "b", "y"))
            assert state.is_assigned("a") and state.is_assigned("b")
