"""End-to-end integration tests: the full pipeline at small scale.

These lock in the paper's qualitative results (the shapes the benchmarks
regenerate at full scale): workload-aware beats workload-agnostic on ipt,
every system assigns every vertex, and Loom's window recovers locality on
randomly-ordered (pseudo-adversarial) streams.
"""

import pytest

from repro.bench.harness import compare_systems
from repro.core.loom import LoomPartitioner
from repro.datasets.registry import load_dataset
from repro.graph.stream import stream_edges
from repro.partitioning.metrics import unassigned_vertices
from repro.partitioning.state import PartitionState
from repro.query.executor import WorkloadExecutor


@pytest.fixture(scope="module")
def provgen():
    return load_dataset("provgen", 900, seed=4)


@pytest.fixture(scope="module")
def musicbrainz():
    return load_dataset("musicbrainz", 1200, seed=4)


class TestFullPipeline:
    @pytest.mark.parametrize("order", ["bfs", "dfs", "random"])
    def test_all_systems_complete_and_comparable(self, provgen, order):
        result = compare_systems(provgen, order=order, k=4, window_size=120, seed=3)
        for name, run in result.runs.items():
            assert unassigned_vertices(provgen.graph, run.state) == []
            assert run.report is not None
        # Hash is the baseline: everything should do at least as well.
        for system in ("ldg", "fennel", "loom"):
            assert result.relative_ipt(system) <= 110.0

    def test_loom_beats_hash_clearly(self, provgen):
        result = compare_systems(provgen, order="bfs", k=4, window_size=120, seed=3)
        assert result.relative_ipt("loom") < 80.0

    def test_loom_beats_workload_agnostic_on_random_order(self, musicbrainz):
        """Sec. 5.3: random order is pseudo-adversarial for LDG/Fennel; the
        window lets Loom re-localise the stream."""
        result = compare_systems(musicbrainz, order="random", k=4, window_size=250, seed=3)
        assert result.relative_ipt("loom") < result.relative_ipt("ldg")
        assert result.relative_ipt("loom") < result.relative_ipt("fennel") + 2.0

    def test_imbalance_within_cap(self, provgen):
        result = compare_systems(provgen, order="bfs", k=4, window_size=120, seed=3)
        for system in ("ldg", "fennel", "loom"):
            state = result.runs[system].state
            assert max(state.sizes()) <= state.capacity

    def test_quality_summary_populated(self, provgen):
        result = compare_systems(provgen, order="bfs", k=4, window_size=120, seed=3)
        for run in result.runs.values():
            assert run.quality["edge_cut"] >= 0
            assert run.quality["assigned_vertices"] == provgen.graph.num_vertices


class TestWindowEffect:
    def test_bigger_window_no_worse_on_random_order(self, musicbrainz):
        """Fig. 9's direction: growing the window improves (or at least
        does not substantially hurt) Loom on random streams."""
        g, wl = musicbrainz.graph, musicbrainz.workload
        events = list(stream_edges(g, "random", seed=5))
        executor = WorkloadExecutor(g, wl)
        ipts = []
        for window in (30, 600):
            state = PartitionState.for_graph(4, g.num_vertices)
            loom = LoomPartitioner(state, wl, window_size=window)
            loom.ingest_all(events)
            ipts.append(executor.execute(state).weighted_ipt)
        assert ipts[1] <= ipts[0] * 1.05


class TestCrossSystemDeterminism:
    def test_identical_reruns(self, provgen):
        a = compare_systems(provgen, order="random", k=4, window_size=100, seed=9)
        b = compare_systems(provgen, order="random", k=4, window_size=100, seed=9)
        for system in a.runs:
            assert a.runs[system].state.assignment() == b.runs[system].state.assignment()
            assert a.relative_ipt(system) == b.relative_ipt(system)


class TestWorkloadSensitivity:
    def test_loom_adapts_to_workload_change(self, provgen):
        """Different workloads should steer Loom to different partitionings
        (the whole point of query-awareness)."""
        g = provgen.graph
        wl_a = provgen.workload
        wl_b = wl_a.reweighted({"revision-chain": 10.0})
        events = list(stream_edges(g, "bfs", seed=1))
        state_a = PartitionState.for_graph(4, g.num_vertices)
        LoomPartitioner(state_a, wl_a, window_size=120).ingest_all(events)
        state_b = PartitionState.for_graph(4, g.num_vertices)
        LoomPartitioner(state_b, wl_b, window_size=120).ingest_all(events)
        assert state_a.assignment() != state_b.assignment()
