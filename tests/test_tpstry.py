"""Tests for the TPSTry++ (Sec. 2/2.2, Alg. 1), anchored on Fig. 2."""

import pytest

from repro.core.signature import SignatureScheme
from repro.core.tpstry import TPSTry
from repro.query.pattern import cycle_pattern, edge_pattern, path_pattern
from repro.query.workload import Workload


def labels_of(node):
    return sorted(node.exemplar.labels().values())


class TestFigure2:
    """The complete TPSTry++ for the Fig. 1 workload (Fig. 2)."""

    def test_single_edge_nodes(self, fig1_trie):
        roots = {tuple(labels_of(n)) for n in fig1_trie.single_edge_nodes()}
        assert roots == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_supports_match_figure2(self, fig1_trie):
        by_labels = {}
        for node in fig1_trie.nodes():
            by_labels.setdefault(tuple(labels_of(node)), []).append(node)
        # a-b occurs in all three queries: support 100%.
        (ab,) = by_labels[("a", "b")]
        assert ab.support == pytest.approx(1.0)
        # b-c occurs in q2 (60%) and q3 (10%).
        (bc,) = by_labels[("b", "c")]
        assert bc.support == pytest.approx(0.7)
        # c-d occurs only in q3.
        (cd,) = by_labels[("c", "d")]
        assert cd.support == pytest.approx(0.1)
        # a-b-c occurs in q2 and q3.
        (abc,) = by_labels[("a", "b", "c")]
        assert abc.support == pytest.approx(0.7)

    def test_motifs_at_40_percent(self, fig1_trie):
        motifs = {tuple(labels_of(n)) for n in fig1_trie.motif_nodes(0.4)}
        assert motifs == {("a", "b"), ("b", "c"), ("a", "b", "c")}

    def test_q1_cycle_node_exists_with_q1_support(self, fig1_trie):
        quad = [n for n in fig1_trie.nodes() if n.num_edges == 4]
        assert len(quad) == 1
        assert quad[0].support == pytest.approx(0.30)

    def test_support_monotone_along_paths(self, fig1_trie):
        assert fig1_trie.check_support_monotone()

    def test_max_depth_is_largest_query(self, fig1_trie, fig1_workload):
        assert fig1_trie.max_depth == fig1_workload.max_pattern_edges()


class TestDagMerging:
    def test_isomorphic_subgraphs_from_different_queries_merge(self):
        """Fig. 3: tries for q1 and q2 share their common sub-graph nodes."""
        wl = Workload(
            [
                (path_pattern(["a", "b", "c"], name="abc"), 0.5),
                (path_pattern(["c", "b", "a"], name="cba"), 0.5),
            ]
        )
        trie = TPSTry.from_workload(wl)
        # a-b-c and c-b-a are isomorphic: one 2-edge node with support 1.0.
        two_edge = [n for n in trie.nodes() if n.num_edges == 2]
        assert len(two_edge) == 1
        assert two_edge[0].support == pytest.approx(1.0)

    def test_dag_node_with_multiple_parents(self):
        """Fig. 2's a-b-a-b can be reached from both b-a-b and a-b-a."""
        wl = Workload([(path_pattern(["a", "b", "a", "b"], name="abab"), 1.0)])
        trie = TPSTry.from_workload(wl)
        (top,) = [n for n in trie.nodes() if n.num_edges == 3]
        assert len(top.parents) == 2

    def test_subgraph_occurring_twice_in_one_query_counts_once(self):
        """A sub-graph occurring many times within one query still counts
        that query's frequency once (Fig. 2 semantics)."""
        wl = Workload([(cycle_pattern(["a", "b", "a", "b"], name="q1"), 1.0)])
        trie = TPSTry.from_workload(wl)
        (ab,) = trie.single_edge_nodes()
        assert ab.support == pytest.approx(1.0)


class TestConstruction:
    def test_rejects_zero_frequency(self):
        trie = TPSTry(SignatureScheme(["a", "b"]))
        with pytest.raises(ValueError):
            trie.add_query(edge_pattern("a", "b"), 0.0)

    def test_rejects_empty_pattern(self):
        from repro.graph.labelled_graph import LabelledGraph

        trie = TPSTry(SignatureScheme(["a"]))
        g = LabelledGraph()
        g.add_vertex(1, "a")
        with pytest.raises(ValueError):
            trie.add_query(g, 1.0)

    def test_node_count_single_edge_query(self):
        wl = Workload([(edge_pattern("a", "b"), 1.0)])
        trie = TPSTry.from_workload(wl)
        assert trie.num_nodes == 1

    def test_node_lookup_by_graph(self, fig1_trie):
        node = fig1_trie.node_for_graph(path_pattern(["a", "b", "c"]))
        assert node is not None
        assert node.support == pytest.approx(0.7)

    def test_lookup_missing_graph(self, fig1_trie):
        assert fig1_trie.node_for_graph(path_pattern(["d", "d"])) is None

    def test_children_annotated_with_deltas(self, fig1_trie):
        """Every trie edge's delta is the child-minus-parent multiset."""
        for node in fig1_trie.nodes(include_root=True):
            for delta_key, children in node.children_by_delta.items():
                for child in children:
                    diff = child.signature.difference(node.signature)
                    assert diff.key == delta_key

    def test_num_queries(self, fig1_trie):
        assert fig1_trie.num_queries == 3

    def test_motif_threshold_validation(self, fig1_trie):
        with pytest.raises(ValueError):
            fig1_trie.motif_nodes(0.0)
        with pytest.raises(ValueError):
            fig1_trie.motif_nodes(1.5)


class TestNodeIds:
    """Node ids are per-trie, not process-global (the seed's module-level
    counter made ids depend on how many tries were built earlier)."""

    def _workload(self):
        return Workload(
            [
                (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
                (path_pattern(["a", "b", "c"], name="abc"), 0.5),
            ]
        )

    def test_two_tries_from_same_workload_carry_identical_ids(self):
        first = TPSTry.from_workload(self._workload())
        second = TPSTry.from_workload(self._workload())  # built *after* first
        ids_first = {n.signature.key: n.node_id for n in first.nodes(include_root=True)}
        ids_second = {n.signature.key: n.node_id for n in second.nodes(include_root=True)}
        assert ids_first == ids_second

    def test_root_is_zero_and_ids_are_dense(self):
        TPSTry.from_workload(self._workload())  # shift any global counter
        trie = TPSTry.from_workload(self._workload())
        assert trie.root.node_id == 0
        ids = sorted(n.node_id for n in trie.nodes(include_root=True))
        assert ids == list(range(trie.num_nodes + 1))


class TestEnumerationCompleteness:
    def test_all_connected_subgraphs_present(self):
        """Every connected edge-sub-graph of a 4-edge query appears."""
        wl = Workload([(path_pattern(["a", "b", "c", "d", "a"], name="p"), 1.0)])
        trie = TPSTry.from_workload(wl)
        # A 4-edge path has 4+3+2+1 = 10 connected sub-paths, all with
        # distinct label sequences here except none — count nodes per size.
        by_size = {}
        for n in trie.nodes():
            by_size[n.num_edges] = by_size.get(n.num_edges, 0) + 1
        assert by_size[1] == 4  # a-b, b-c, c-d, d-a
        assert by_size[2] == 3  # a-b-c, b-c-d, c-d-a
        assert by_size[3] == 2
        assert by_size[4] == 1
