"""Tests for number-theoretic signatures, including the paper's worked
examples (Sec. 2.1) and the no-false-negatives property (Sec. 2.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.signature import (
    DEFAULT_PRIME,
    EMPTY_SIGNATURE,
    FactorMultiset,
    SignatureScheme,
    is_prime,
)
from repro.graph.labelled_graph import LabelledGraph
from repro.query.pattern import cycle_pattern, path_pattern


class TestFactorMultiset:
    def test_equality_ignores_order(self):
        assert FactorMultiset([3, 1, 2]) == FactorMultiset([2, 3, 1])

    def test_multiplicity_matters(self):
        assert FactorMultiset([2, 2]) != FactorMultiset([2])

    def test_distinguishes_equal_products(self):
        """Sec. 2.3: representing signatures as factor sets distinguishes
        {6,2}, {4,3} and {12} even though the products are equal."""
        assert FactorMultiset([6, 2]) != FactorMultiset([12])
        assert FactorMultiset([6, 2]) != FactorMultiset([4, 3])
        assert FactorMultiset([6, 2]).product() == FactorMultiset([12]).product() == 12

    def test_merge(self):
        merged = FactorMultiset([2, 3]).merge(FactorMultiset([3, 5]))
        assert merged == FactorMultiset([2, 3, 3, 5])

    def test_merge_accepts_iterables(self):
        assert FactorMultiset([2]).merge([3]) == FactorMultiset([2, 3])

    def test_difference(self):
        diff = FactorMultiset([2, 3, 3, 5]).difference(FactorMultiset([3, 5]))
        assert diff == FactorMultiset([2, 3])

    def test_difference_requires_submultiset(self):
        with pytest.raises(ValueError):
            FactorMultiset([2]).difference(FactorMultiset([3]))

    def test_contains(self):
        big = FactorMultiset([2, 2, 3])
        assert big.contains(FactorMultiset([2, 3]))
        assert not big.contains(FactorMultiset([2, 2, 2]))
        assert big.contains(EMPTY_SIGNATURE)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ValueError):
            FactorMultiset([0])
        with pytest.raises(ValueError):
            FactorMultiset([-3])

    def test_hashable_dict_key(self):
        d = {FactorMultiset([1, 2]): "x"}
        assert d[FactorMultiset([2, 1])] == "x"

    def test_product_of_empty_is_one(self):
        assert EMPTY_SIGNATURE.product() == 1


class TestPaperWorkedExample:
    """Sec. 2.1: p = 11, r(a) = 3, r(b) = 10."""

    def test_edge_factor(self, paper_scheme):
        assert paper_scheme.edge_factor("a", "b") == 7

    def test_edge_factor_symmetric(self, paper_scheme):
        assert paper_scheme.edge_factor("a", "b") == paper_scheme.edge_factor("b", "a")

    def test_single_edge_signature_product(self, paper_scheme):
        # 7 * ((3+1) mod 11) * ((10+1) mod 11 -> 11) = 7 * 4 * 11 = 308
        assert paper_scheme.single_edge_signature("a", "b").product() == 308

    def test_degree_factor_zero_replaced_by_p(self, paper_scheme):
        # (10 + 1) mod 11 == 0 -> replaced by 11 (footnote 3)
        assert paper_scheme.degree_factor("b", 1) == 11

    def test_aba_path_signature(self, paper_scheme):
        # 308 * 7 * 4 * 1 = 8624
        aba = path_pattern(["a", "b", "a"])
        assert paper_scheme.graph_signature(aba).product() == 8624

    def test_q1_cycle_signature(self, paper_scheme):
        # 7^4 * 11^2 * 20^2 = 116 208 400
        q1 = cycle_pattern(["a", "b", "a", "b"])
        assert paper_scheme.graph_signature(q1).product() == 116_208_400

    def test_incremental_matches_direct(self, paper_scheme):
        """Building a-b-a by adding an edge to a-b multiplies exactly the
        factors of the paper's example: 7, 4 and 1."""
        base = paper_scheme.single_edge_signature("a", "b")
        delta = paper_scheme.addition_factors("a", "b", 0, 1)
        assert sorted(delta) == [1, 4, 7]
        combined = base.merge(delta)
        aba = path_pattern(["a", "b", "a"])
        assert combined == paper_scheme.graph_signature(aba)


class TestSignatureScheme:
    def test_rejects_composite_p(self):
        with pytest.raises(ValueError):
            SignatureScheme(p=10)

    def test_rejects_tiny_p(self):
        with pytest.raises(ValueError):
            SignatureScheme(p=2)

    def test_distinct_labels_get_distinct_values(self):
        scheme = SignatureScheme(["a", "b", "c", "d"], p=251, seed=5)
        values = list(scheme.known_labels().values())
        assert len(values) == len(set(values))
        assert all(1 <= v < 251 for v in values)

    def test_lazy_label_assignment(self):
        scheme = SignatureScheme([], p=251, seed=0)
        v1 = scheme.value("new-label")
        assert scheme.value("new-label") == v1

    def test_deterministic_for_seed(self):
        a = SignatureScheme(["x", "y"], p=251, seed=42)
        b = SignatureScheme(["x", "y"], p=251, seed=42)
        assert a.known_labels() == b.known_labels()

    def test_with_values_validates(self):
        with pytest.raises(ValueError):
            SignatureScheme(p=11).with_values({"a": 0})

    def test_degree_factor_one_based(self):
        scheme = SignatureScheme(["a"], p=11)
        with pytest.raises(ValueError):
            scheme.degree_factor("a", 0)

    def test_same_label_edge_factor_is_p(self):
        scheme = SignatureScheme(["a"], p=11)
        assert scheme.edge_factor("a", "a") == 11

    def test_alphabet_larger_than_field(self):
        scheme = SignatureScheme([f"l{i}" for i in range(20)], p=11, seed=0)
        assert all(1 <= v < 11 for v in scheme.known_labels().values())


class TestDirectedEdgeFactor:
    """Sec. 2.1's inline directed-graph extension."""

    def test_source_minus_target(self, paper_scheme):
        # r(a)=3, r(b)=10, p=11: a->b gives (3-10) mod 11 = 4, b->a gives 7.
        assert paper_scheme.directed_edge_factor("a", "b") == 4
        assert paper_scheme.directed_edge_factor("b", "a") == 7

    def test_orientation_distinguishes(self, paper_scheme):
        assert paper_scheme.directed_edge_factor("a", "b") != paper_scheme.directed_edge_factor("b", "a")

    def test_self_label_maps_to_p(self, paper_scheme):
        # (r - r) mod p == 0 -> replaced by p (footnote 3).
        assert paper_scheme.directed_edge_factor("a", "a") == 11

    def test_undirected_factor_is_one_of_the_orientations(self, paper_scheme):
        undirected = paper_scheme.edge_factor("a", "b")
        assert undirected in {
            paper_scheme.directed_edge_factor("a", "b"),
            paper_scheme.directed_edge_factor("b", "a"),
        }


class TestGraphSignatures:
    def test_empty_graph(self):
        scheme = SignatureScheme(["a"], p=251)
        assert scheme.graph_signature(LabelledGraph()) == EMPTY_SIGNATURE

    def test_factor_count_is_three_per_edge(self):
        """Handshaking lemma: 3|E| factors per signature (Sec. 2.3)."""
        scheme = SignatureScheme(["a", "b", "c"], p=251)
        g = path_pattern(["a", "b", "c", "a", "b"])
        assert len(scheme.graph_signature(g)) == 3 * g.num_edges

    def test_isomorphic_relabelled_graphs_match(self):
        """No false negatives: vertex ids don't affect the signature."""
        scheme = SignatureScheme(["a", "b", "c"], p=251)
        g1 = LabelledGraph.from_edges([(1, "a", 2, "b"), (2, "b", 3, "c")])
        g2 = LabelledGraph.from_edges([(30, "c", 20, "b"), (20, "b", 10, "a")])
        assert scheme.graph_signature(g1) == scheme.graph_signature(g2)

    def test_different_labels_differ(self):
        scheme = SignatureScheme(["a", "b", "c"], p=251, seed=3)
        g1 = path_pattern(["a", "b", "c"])
        g2 = path_pattern(["a", "b", "a"])
        assert scheme.graph_signature(g1) != scheme.graph_signature(g2)

    def test_incremental_equals_batch(self):
        """Adding edges one at a time reproduces the whole-graph signature."""
        scheme = SignatureScheme(["a", "b", "c"], p=251, seed=7)
        g = LabelledGraph.from_edges(
            [(1, "a", 2, "b"), (2, "b", 3, "c"), (3, "c", 4, "a"), (2, "b", 4, "a")]
        )
        incremental = EMPTY_SIGNATURE
        partial = LabelledGraph()
        for u, v in g.edges():
            du = partial.degree(u) if partial.has_vertex(u) else 0
            dv = partial.degree(v) if partial.has_vertex(v) else 0
            incremental = incremental.merge(
                scheme.addition_factors(g.label(u), g.label(v), du, dv)
            )
            partial.add_edge(u, v, g.label(u), g.label(v))
        assert incremental == scheme.graph_signature(g)


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 251, 317])
    def test_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-1, 0, 1, 4, 9, 121, 250])
    def test_composites(self, n):
        assert not is_prime(n)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    perm_seed=st.integers(0, 10_000),
    n=st.integers(2, 9),
)
def test_property_signature_invariant_under_relabelling(seed, perm_seed, n):
    """Randomly built labelled graphs keep their signature under any
    permutation of vertex identifiers — the no-false-negatives guarantee."""
    rng = random.Random(seed)
    labels = ["a", "b", "c", "d"]
    g = LabelledGraph()
    for v in range(n):
        g.add_vertex(v, rng.choice(labels))
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v)
    perm = list(range(n))
    random.Random(perm_seed).shuffle(perm)
    h = LabelledGraph()
    for v in range(n):
        h.add_vertex(perm[v], g.label(v))
    for u, v in g.edges():
        h.add_edge(perm[u], perm[v])
    scheme = SignatureScheme(labels, p=DEFAULT_PRIME, seed=1)
    assert scheme.graph_signature(g) == scheme.graph_signature(h)
