"""The serving layer's correctness anchor.

On full enumeration, the engine's partition-local expansion must charge
exactly the hops the offline :class:`WorkloadExecutor` counts as
``cut_traversals`` — per query, for every partitioner, on the figure-1
graph and on a random one.  Anything else means the serving layer answers
a different question than the metric the paper optimises.
"""

import pytest

from helpers import make_random_labelled_graph

from repro.datasets.figure1 import figure1_graph, figure1_workload
from repro.graph.stream import stream_edges
from repro.partitioning import registry
from repro.partitioning.registry import BUILTIN_SYSTEMS
from repro.partitioning.state import PartitionState
from repro.query.executor import WorkloadExecutor
from repro.query.pattern import cycle_pattern, path_pattern
from repro.query.workload import Workload
from repro.serving import ServingEngine
from repro.serving.router import BUILTIN_ROUTERS


def _random_case():
    graph = make_random_labelled_graph(60, 130, seed=11)
    workload = Workload(
        [
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
            (cycle_pattern(["a", "b", "a", "b"], name="abab"), 0.3),
            (path_pattern(["c", "b"], name="cb"), 0.2),
        ],
        name="random",
    )
    return graph, workload


CASES = {
    "figure1": lambda: (figure1_graph(), figure1_workload()),
    "random": _random_case,
}


def _partition(system, graph, workload, k, seed=0):
    state = PartitionState.for_graph(k, graph.num_vertices)
    partitioner = registry.create(
        system,
        state,
        graph=graph,
        workload=workload,
        window_size=max(8, graph.num_edges // 4),
        seed=seed,
    )
    partitioner.ingest_all(stream_edges(graph, "bfs", seed=seed))
    return state


@pytest.mark.parametrize("case", list(CASES))
@pytest.mark.parametrize("system", BUILTIN_SYSTEMS)
def test_hops_bit_match_cut_traversals(case, system):
    """Per query: engine hops == executor cut_traversals, embeddings and
    traversals identical, weighted totals equal — full enumeration."""
    graph, workload = CASES[case]()
    k = 2 if case == "figure1" else 4
    state = _partition(system, graph, workload, k)
    executor = WorkloadExecutor(graph, workload, embedding_limit=None)
    offline = executor.execute(state, system)
    engine = ServingEngine(graph, state, workload)
    served = engine.execute_workload(system)

    offline_by_name = {q.name: q for q in offline.queries}
    assert {q.name for q in served.queries} == set(offline_by_name)
    for query in served.queries:
        reference = offline_by_name[query.name]
        assert query.hops == reference.cut_traversals
        assert query.embeddings == reference.embeddings
        assert query.traversals == reference.traversals
        assert query.frequency == reference.frequency
    assert served.weighted_hops == offline.weighted_ipt
    assert served.total_hops == offline.total_cut_traversals


@pytest.mark.parametrize("router", BUILTIN_ROUTERS)
def test_equivalence_holds_for_every_router(router):
    """Routing changes dispatch, never answers: same hops under any router."""
    graph, workload = CASES["random"]()
    state = _partition("ldg", graph, workload, k=4)
    offline = WorkloadExecutor(graph, workload, embedding_limit=None).execute(state, "ldg")
    engine = ServingEngine(graph, state, workload, router=router)
    served = engine.execute_workload("ldg")
    assert served.weighted_hops == offline.weighted_ipt
    for query, reference in zip(served.queries, offline.queries):
        assert (query.name, query.hops, query.embeddings) == (
            reference.name,
            reference.cut_traversals,
            reference.embeddings,
        )


def test_cache_does_not_change_totals():
    """A warmed cache must serve the same totals as a cold engine."""
    graph, workload = CASES["random"]()
    state = _partition("fennel", graph, workload, k=4)
    cold = ServingEngine(graph, state, workload, cache=None).execute_workload()
    engine = ServingEngine(graph, state, workload, cache=True)
    first = engine.execute_workload()
    warmed = engine.execute_workload()  # second pass is all cache hits
    for a, b, c in zip(cold.queries, first.queries, warmed.queries):
        assert a.hops == b.hops == c.hops
        assert a.embeddings == b.embeddings == c.embeddings
    assert warmed.queries[-1].cache_hits > 0


def test_streamed_engine_matches_static_build():
    """Ingesting through the engine batch by batch lands in the same place
    as materialising the stores from the finished graph."""
    from repro.graph.labelled_graph import LabelledGraph
    from repro.graph.stream import batched

    graph, workload = CASES["random"]()
    events = list(stream_edges(graph, "random", seed=3))
    for system in BUILTIN_SYSTEMS:
        state = PartitionState.for_graph(4, graph.num_vertices)
        partitioner = registry.create(
            system,
            state,
            graph=graph,
            workload=workload,
            window_size=30,
            seed=0,
        )
        live = LabelledGraph("live")
        engine = ServingEngine(live, state, workload, partitioner=partitioner)
        for chunk in batched(events, 37):
            engine.ingest(chunk)
        engine.finalize()
        assert engine.stores.num_pending == 0
        assert engine.stores.num_edges == graph.num_edges

        static = ServingEngine(graph, state, workload)
        served = engine.execute_workload(system)
        reference = static.execute_workload(system)
        for a, b in zip(served.queries, reference.queries):
            assert (a.name, a.hops, a.embeddings) == (b.name, b.hops, b.embeddings)
