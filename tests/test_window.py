"""Tests for the sliding window Ptemp (Sec. 3), id-based."""

import pytest

from repro.core.window import LabelConflictError, SlidingWindow
from repro.graph.stream import EdgeEvent


def ev(u, lu, v, lv):
    return EdgeEvent(u, lu, v, lv)


class TestBuffering:
    def test_add_and_len(self):
        w = SlidingWindow(3)
        ekey = w.add(ev(1, "a", 2, "b"))
        assert ekey is not None
        assert len(w) == 1
        assert ekey in w

    def test_duplicate_edge_rejected(self):
        w = SlidingWindow(3)
        w.add(ev(1, "a", 2, "b"))
        assert w.add(ev(2, "b", 1, "a")) is None
        assert len(w) == 1

    def test_duplicate_with_conflicting_labels_raises(self):
        """A relabelled re-arrival used to be dropped silently; now it is a
        detected stream corruption."""
        w = SlidingWindow(3)
        w.add(ev(1, "a", 2, "b"))
        with pytest.raises(LabelConflictError):
            w.add(ev(1, "a", 2, "c"))
        # The buffered event is untouched.
        assert len(w) == 1
        assert w.oldest().v_label == "b"

    def test_incident_edge_relabelling_vertex_raises(self):
        w = SlidingWindow(3)
        w.add(ev(1, "a", 2, "b"))
        with pytest.raises(LabelConflictError):
            w.add(ev(2, "c", 3, "c"))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_foreign_vertex_id_rejected(self):
        """A caller-supplied id the interner never handed out must not
        corrupt the id → label map: it raises, naming the offending id."""
        from repro.graph.interning import pack_edge

        w = SlidingWindow(3)
        uid = w.interner.intern(1)
        with pytest.raises(ValueError, match="99"):
            w.add_ids(ev(1, "a", 2, "b"), uid, 99, pack_edge(uid, 99))
        with pytest.raises(ValueError, match="-1"):
            w.add_ids(ev(1, "a", 2, "b"), -1, uid, pack_edge(0, uid))
        assert len(w) == 0

    def test_valid_pre_interned_ids_accepted(self):
        from repro.graph.interning import pack_edge

        w = SlidingWindow(3)
        uid = w.interner.intern(1)
        vid = w.interner.intern(2)
        assert w.add_ids(ev(1, "a", 2, "b"), uid, vid, pack_edge(uid, vid)) is not None
        assert len(w) == 1

    def test_self_loop_rejected(self):
        """Simple-graph model, as in the seed's graph-backed window."""
        w = SlidingWindow(3)
        with pytest.raises(ValueError, match="self-loop"):
            w.add(ev(7, "x", 7, "y"))
        assert len(w) == 0
        assert w.num_vertices == 0

    def test_window_graph_tracks_contents(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        assert w.num_vertices == 3
        assert len(w) == 2
        vid3 = w.interner.id_of(3)
        assert w.label_of(vid3) == "c"
        assert w.label_id(vid3) == w.labels.id_of("c")
        assert w.degree_in_window(2) == 2
        assert w.degree_in_window(99) == 0

    def test_to_labelled_graph_materialises_ptemp(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        g = w.to_labelled_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.label(3) == "c"
        assert g.has_edge(1, 2)


class TestFifo:
    def test_oldest_is_first_inserted(self):
        w = SlidingWindow(5)
        first = ev(1, "a", 2, "b")
        w.add(first)
        w.add(ev(2, "b", 3, "c"))
        assert w.oldest() is first
        ekey, event = w.oldest_item()
        assert event is first
        assert ekey in w

    def test_oldest_on_empty_raises(self):
        with pytest.raises(LookupError):
            SlidingWindow(2).oldest()
        with pytest.raises(LookupError):
            SlidingWindow(2).oldest_item()

    def test_overflow_flag(self):
        w = SlidingWindow(2)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        assert not w.is_overflowing()
        w.add(ev(3, "c", 4, "d"))
        assert w.is_overflowing()

    def test_oldest_advances_after_removal(self):
        w = SlidingWindow(5)
        e1, e2 = ev(1, "a", 2, "b"), ev(2, "b", 3, "c")
        k1 = w.add(e1)
        w.add(e2)
        w.remove_ekeys({k1})
        assert w.oldest() is e2


class TestClusterRemoval:
    def test_remove_multiple_edges(self):
        w = SlidingWindow(5)
        events = [ev(1, "a", 2, "b"), ev(2, "b", 3, "c"), ev(3, "c", 4, "d")]
        keys = [w.add(e) for e in events]
        removed = w.remove_ekeys({keys[0], keys[2]})
        assert set(removed) == {events[0], events[2]}
        assert len(w) == 1

    def test_isolated_vertices_dropped_from_graph(self):
        w = SlidingWindow(5)
        k1 = w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        w.remove_ekeys({k1})
        assert not w.has_vertex_id(w.interner.id_of(1))
        assert w.has_vertex_id(w.interner.id_of(2))  # still held by the 2-3 edge

    def test_vertex_label_forgotten_once_isolated(self):
        """A vertex that left Ptemp entirely may re-enter relabelled — only
        *windowed* labels are immutable (matches the seed's graph-backed
        behaviour, where remove_vertex deleted the label)."""
        w = SlidingWindow(5)
        k1 = w.add(ev(1, "a", 2, "b"))
        w.remove_ekeys({k1})
        assert w.add(ev(1, "z", 3, "c")) is not None

    def test_remove_unknown_edges_ignored(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        assert w.remove_ekeys({(99 << 32) | 100}) == []
        assert len(w) == 1

    def test_event_lookup(self):
        w = SlidingWindow(5)
        e = ev(1, "a", 2, "b")
        ekey = w.add(e)
        assert w.event_for(ekey) is e
        assert w.event_for((5 << 32) | 6) is None

    def test_iteration(self):
        w = SlidingWindow(5)
        e1, e2 = ev(1, "a", 2, "b"), ev(2, "b", 3, "c")
        k1 = w.add(e1)
        k2 = w.add(e2)
        assert list(w.edges()) == [k1, k2]
        assert list(w.events()) == [e1, e2]
