"""Tests for the sliding window Ptemp (Sec. 3)."""

import pytest

from repro.core.window import SlidingWindow
from repro.graph.labelled_graph import normalize_edge
from repro.graph.stream import EdgeEvent


def ev(u, lu, v, lv):
    return EdgeEvent(u, lu, v, lv)


class TestBuffering:
    def test_add_and_len(self):
        w = SlidingWindow(3)
        assert w.add(ev(1, "a", 2, "b"))
        assert len(w) == 1
        assert normalize_edge(1, 2) in w

    def test_duplicate_edge_rejected(self):
        w = SlidingWindow(3)
        w.add(ev(1, "a", 2, "b"))
        assert not w.add(ev(2, "b", 1, "a"))
        assert len(w) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_window_graph_tracks_contents(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        assert w.graph.num_vertices == 3
        assert w.graph.num_edges == 2
        assert w.graph.label(3) == "c"
        assert w.degree_in_window(2) == 2
        assert w.degree_in_window(99) == 0


class TestFifo:
    def test_oldest_is_first_inserted(self):
        w = SlidingWindow(5)
        first = ev(1, "a", 2, "b")
        w.add(first)
        w.add(ev(2, "b", 3, "c"))
        assert w.oldest() is first

    def test_oldest_on_empty_raises(self):
        with pytest.raises(LookupError):
            SlidingWindow(2).oldest()

    def test_overflow_flag(self):
        w = SlidingWindow(2)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        assert not w.is_overflowing()
        w.add(ev(3, "c", 4, "d"))
        assert w.is_overflowing()

    def test_oldest_advances_after_removal(self):
        w = SlidingWindow(5)
        e1, e2 = ev(1, "a", 2, "b"), ev(2, "b", 3, "c")
        w.add(e1)
        w.add(e2)
        w.remove_edges({e1.edge})
        assert w.oldest() is e2


class TestClusterRemoval:
    def test_remove_multiple_edges(self):
        w = SlidingWindow(5)
        events = [ev(1, "a", 2, "b"), ev(2, "b", 3, "c"), ev(3, "c", 4, "d")]
        for e in events:
            w.add(e)
        removed = w.remove_edges({events[0].edge, events[2].edge})
        assert {r.edge for r in removed} == {events[0].edge, events[2].edge}
        assert len(w) == 1

    def test_isolated_vertices_dropped_from_graph(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        w.add(ev(2, "b", 3, "c"))
        w.remove_edges({normalize_edge(1, 2)})
        assert not w.graph.has_vertex(1)
        assert w.graph.has_vertex(2)  # still held by the 2-3 edge

    def test_remove_unknown_edges_ignored(self):
        w = SlidingWindow(5)
        w.add(ev(1, "a", 2, "b"))
        assert w.remove_edges({normalize_edge(8, 9)}) == []
        assert len(w) == 1

    def test_event_lookup(self):
        w = SlidingWindow(5)
        e = ev(1, "a", 2, "b")
        w.add(e)
        assert w.event_for(e.edge) is e
        assert w.event_for(normalize_edge(5, 6)) is None

    def test_iteration(self):
        w = SlidingWindow(5)
        e1, e2 = ev(1, "a", 2, "b"), ev(2, "b", 3, "c")
        w.add(e1)
        w.add(e2)
        assert list(w.edges()) == [e1.edge, e2.edge]
        assert list(w.events()) == [e1, e2]
