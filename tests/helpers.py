"""Plain importable test helpers.

Test modules import from here (``from helpers import …``) instead of from
``conftest`` — a ``conftest.py`` is pytest plumbing, and importing it by
module name breaks as soon as another ``conftest.py`` (the benchmark
suite's, historically) wins the ``sys.modules['conftest']`` slot.
"""

import random

from repro.graph.labelled_graph import LabelledGraph


def make_random_labelled_graph(
    num_vertices: int = 60,
    num_edges: int = 120,
    labels=("a", "b", "c"),
    seed: int = 0,
) -> LabelledGraph:
    """A connected-ish random labelled graph for integration tests."""
    rng = random.Random(seed)
    g = LabelledGraph(f"random-{seed}")
    for v in range(num_vertices):
        g.add_vertex(v, rng.choice(labels))
    # Spanning chain first so streams visit everything.
    for v in range(1, num_vertices):
        g.add_edge(v - 1, v)
    added = num_vertices - 1
    while added < num_edges:
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g
