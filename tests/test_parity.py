"""Refactor parity: array-backed stack vs the frozen dict-based seed.

The interned-id refactor must be *behaviour preserving*: for a fixed seed
and stream, every system places every vertex in exactly the partition the
pre-refactor implementation chose.  These tests drive the frozen legacy
implementations (:mod:`repro.partitioning.legacy`) and the live stack over
identical event lists and compare full assignment maps.
"""

import pytest

from repro.core.loom import LoomPartitioner
from repro.graph.interning import VertexInterner
from repro.graph.stream import stream_edges, synthetic_stream
from repro.partitioning.fennel import FennelPartitioner
from repro.partitioning.hash_partitioner import HashPartitioner
from repro.partitioning.ldg import LDGPartitioner
from repro.partitioning.legacy import (
    DictPartitionState,
    LegacyFennelPartitioner,
    LegacyHashPartitioner,
    LegacyLDGPartitioner,
    LegacyLoomPartitioner,
)
from repro.partitioning.state import PartitionState
from repro.query.pattern import path_pattern
from repro.query.workload import Workload

from helpers import make_random_labelled_graph

K = 4


@pytest.fixture(scope="module")
def graph():
    return make_random_labelled_graph(num_vertices=300, num_edges=700, seed=11)


@pytest.fixture(scope="module")
def workload():
    return Workload(
        [
            (path_pattern(["a", "b", "a", "b"], name="abab"), 0.5),
            (path_pattern(["a", "b", "c"], name="abc"), 0.5),
        ],
        name="parity",
    )


def _states(graph):
    new = PartitionState.for_graph(K, graph.num_vertices)
    old = DictPartitionState.for_graph(K, graph.num_vertices)
    assert new.capacity == old.capacity
    return new, old


@pytest.mark.parametrize("order", ["bfs", "dfs", "random"])
def test_ldg_parity(graph, order):
    events = list(stream_edges(graph, order, seed=3))
    new, old = _states(graph)
    LDGPartitioner(new).ingest_all(events)
    LegacyLDGPartitioner(old).ingest_all(events)
    assert new.assignment() == old.assignment()


@pytest.mark.parametrize("order", ["bfs", "random"])
def test_fennel_parity(graph, order):
    events = list(stream_edges(graph, order, seed=3))
    new, old = _states(graph)
    FennelPartitioner(new, graph.num_vertices, graph.num_edges).ingest_all(events)
    LegacyFennelPartitioner(old, graph.num_vertices, graph.num_edges).ingest_all(events)
    assert new.assignment() == old.assignment()


def test_hash_parity(graph):
    events = list(stream_edges(graph, "random", seed=3))
    new, old = _states(graph)
    HashPartitioner(new, seed=7).ingest_all(events)
    LegacyHashPartitioner(old, seed=7).ingest_all(events)
    assert new.assignment() == old.assignment()


@pytest.mark.parametrize("order,window", [("bfs", 120), ("random", 200)])
def test_loom_parity(graph, workload, order, window):
    """Full-stack parity: matcher + auction + LDG fallback, end to end."""
    events = list(stream_edges(graph, order, seed=3))
    new, old = _states(graph)
    LoomPartitioner(new, workload, window_size=window, seed=0).ingest_all(events)
    LegacyLoomPartitioner(old, workload, window_size=window, seed=0).ingest_all(events)
    assert new.assignment() == old.assignment()


@pytest.mark.parametrize("order", ["bfs", "random"])
def test_loom_parity_tight_capacity_spills(graph, workload, order):
    """Zero-slack capacity forces auctions to fill the winner mid-cluster
    and spill the tail — the path where assignment *order* matters.  The
    legacy glue aligns its spill tie-break with the live allocator's
    interner order, so parity must hold bit for bit even here."""
    import math

    events = list(stream_edges(graph, order, seed=3))
    capacity = math.ceil(graph.num_vertices / K)  # imbalance 1.0
    new = PartitionState(K, capacity)
    old = DictPartitionState(K, capacity)
    LoomPartitioner(new, workload, window_size=150, seed=0).ingest_all(events)
    LegacyLoomPartitioner(old, workload, window_size=150, seed=0).ingest_all(events)
    assert new.assignment() == old.assignment()


def test_spill_tiebreak_parity(fig1_index):
    """When the winner fills mid-cluster, *which* vertices spill depends on
    the assignment order.  The live allocator sorts interner ids; the
    legacy glue passes interner order as ``vertex_order`` so both sides
    break the tie identically even where id order and the seed's repr
    order disagree (here: ids say 9 first, reprs say '10' first)."""
    from repro.core.allocation import EqualOpportunism
    from repro.core.matching import Match
    from repro.graph.interning import pack_edge
    from repro.partitioning.legacy import DictPartitionState, LegacyEqualOpportunism

    node = fig1_index.single_edge_motif("a", "b")

    class VertexView:
        """The match surface LegacyEqualOpportunism reads."""

        def __init__(self, vertices):
            self.vertices = frozenset(vertices)
            self.edges = frozenset()
            self.support = node.support

    results = []
    for side in ("live", "legacy"):
        if side == "live":
            state = PartitionState(2, 4)
            ids = {v: state.intern(v) for v in (1, 9, 10, 2)}  # id order: 1,9,10,2
            state.assign(1, 0)  # overlap pulls the auction to partition 0
            state.assign(("pad", 0), 0)
            state.assign(("pad", 1), 0)  # partition 0 now 3/4: one slot left
            match = Match(
                frozenset(pack_edge(ids[1], ids[v]) for v in (9, 10, 2)),
                node.node_id,
                node.support,
            )
            EqualOpportunism(state).allocate([match])
        else:
            interner = VertexInterner()
            for v in (1, 9, 10, 2):
                interner.intern(v)
            state = DictPartitionState(2, 4)
            state.assign(1, 0)
            state.assign(("pad", 0), 0)
            state.assign(("pad", 1), 0)
            LegacyEqualOpportunism(state, vertex_order=interner.id_of).allocate(
                [VertexView([1, 9, 10, 2])]
            )
        assignment = state.assignment()
        assert sum(1 for v in (9, 10, 2) if assignment[v] == 0) == 1  # spill happened
        results.append({v: assignment[v] for v in (1, 9, 10, 2)})
    assert results[0] == results[1]
    assert results[0][9] == 0  # id order: 9 takes the last slot, 10 and 2 spill


def test_loom_parity_neighbor_aware_bids(graph, workload):
    """The ablation bid path (id-keyed in the live stack, vertex-keyed in
    the legacy one) must count the same overlaps."""
    events = list(stream_edges(graph, "random", seed=5))
    new, old = _states(graph)
    LoomPartitioner(
        new, workload, window_size=150, seed=0, neighbor_aware_bids=True
    ).ingest_all(events)
    LegacyLoomPartitioner(
        old, workload, window_size=150, seed=0, neighbor_aware_bids=True
    ).ingest_all(events)
    assert new.assignment() == old.assignment()


def test_loom_assignments_bit_identical_pre_post_compile():
    """Full-pipeline pre/post compile parity on a labelled random graph.

    The digest was produced by the pre-plan object-walking matcher
    (commit c3a4385) on this exact seeded configuration; the compiled
    MotifPlan pipeline must reproduce it bit for bit.  (The synthetic
    stream twins live in ``tests/test_plan.py``.)
    """
    import hashlib
    import json

    from repro.datasets.figure1 import figure1_workload

    g = make_random_labelled_graph(num_vertices=250, num_edges=600, seed=21)
    events = list(stream_edges(g, "random", seed=5))
    state = PartitionState.for_graph(5, g.num_vertices)
    LoomPartitioner(state, figure1_workload(), window_size=120, seed=3).ingest_all(events)
    blob = json.dumps(sorted((repr(v), p) for v, p in state.assignment().items())).encode()
    assert (
        hashlib.sha256(blob).hexdigest()
        == "29ef5bbfad7b167448f3ed8454f5a58a99300a937f33c5da4f1ffebf5c3f1bd2"
    )


def test_parity_on_synthetic_stream():
    """The benchmark's stream generator feeds both stacks identically."""
    events = list(synthetic_stream(500, 1_500, seed=9))
    vertices = {ev.u for ev in events} | {ev.v for ev in events}
    new = PartitionState.for_graph(8, len(vertices))
    old = DictPartitionState.for_graph(8, len(vertices))
    LDGPartitioner(new).ingest_all(events)
    LegacyLDGPartitioner(old).ingest_all(events)
    assert new.assignment() == old.assignment()
    assert new.num_assigned == len(vertices)
